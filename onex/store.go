package onex

import (
	"errors"
	"fmt"

	"repro/internal/mmapdata"
	"repro/internal/store"
	"repro/internal/ts"
)

// ErrNoStore is returned by persistence operations on a DB that was opened
// without a storage engine (Config.Store nil).
var ErrNoStore = errors.New("onex: no store attached")

// ErrNoSnapshot is returned by OpenStore when the store directory exists but
// holds no snapshot yet: there is nothing to warm-open, so the caller should
// build the dataset cold (Open with Config.Store) instead.
var ErrNoSnapshot = errors.New("onex: store has no snapshot")

// OpenStore warm-opens a database from a FileStore directory: it loads the
// snapshot, re-applies the recorded normalization transform (deterministic
// arithmetic, so the reconstruction is bit-identical to the DB that wrote
// it — verified by the base's dataset checksum), and replays the WAL tail.
// The resolved engine configuration (ST, length bounds, band, mode,
// normalization) comes from the store; cfg contributes only the runtime
// knobs that are not persisted: Workers, CompactBytes, and FsyncEvery.
// cfg.Store must be nil — OpenStore attaches its own engine, which the
// returned DB owns (and Close releases).
//
// A directory without a snapshot returns ErrNoSnapshot.
func OpenStore(dir string, cfg Config) (*DB, error) {
	if cfg.Store != nil {
		return nil, errors.New("onex: OpenStore: cfg.Store must be nil (the engine is opened from dir)")
	}
	if cfg.FsyncEvery < 0 {
		return nil, &ConfigError{Field: "FsyncEvery", Value: cfg.FsyncEvery,
			Reason: "must be non-negative (0 or 1 = fsync per ingest)"}
	}
	eng, err := store.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("onex: OpenStore: %w", err)
	}
	applyFsyncEvery(eng, cfg.FsyncEvery)
	if cfg.MmapValues {
		// Swap the engine's snapshot opener for the mmap path: Load then
		// returns a State whose series values are zero-copy views over the
		// mapped file, carried by the Dataset's ValueSource.
		eng.SetSnapshotOpener(mmapdata.OpenState)
	}
	db, err := openFromEngine(eng, cfg)
	if err != nil {
		eng.Close()
		return nil, err
	}
	return db, nil
}

// applyFsyncEvery forwards the group-commit stride to engines that support
// it (FileStore). Engines without the knob keep their own durability
// policy.
func applyFsyncEvery(eng store.Engine, n int) {
	if s, ok := eng.(interface{ SetFsyncEvery(int) }); ok {
		s.SetFsyncEvery(max(n, 1))
	}
}

// openFromEngine recovers a DB from an already-opened engine. On error the
// engine is left open for the caller to close.
func openFromEngine(eng store.Engine, cfg Config) (*DB, error) {
	res, err := eng.Load()
	if err != nil {
		return nil, fmt.Errorf("onex: OpenStore: %w", err)
	}
	if res.State == nil {
		return nil, ErrNoSnapshot
	}
	db, err := openFromState(res.State, cfg, "OpenStore")
	if err != nil {
		releaseStateSource(res.State)
		return nil, err
	}
	db.store = eng

	// Replay the WAL tail. Records the snapshot already folded in (a crash
	// between compaction's two renames leaves them behind) are skipped by
	// sequence; past that, the log must be contiguous with the snapshot.
	for _, rec := range res.Records {
		if rec.Seq <= db.version {
			continue
		}
		if rec.Seq != db.version+1 {
			releaseStateSource(res.State)
			return nil, fmt.Errorf("onex: OpenStore: replay: record seq %d does not follow version %d (lost records)", rec.Seq, db.version)
		}
		if err := db.applySeriesLocked(rec.Name, rec.Values); err != nil {
			releaseStateSource(res.State)
			return nil, fmt.Errorf("onex: OpenStore: replay seq %d (%q): %w", rec.Seq, rec.Name, err)
		}
		db.version++
	}
	return db, nil
}

// releaseStateSource drops the owner reference on a decoded state's
// mmap-backed value source when an open fails after the mapping was
// created (the DB never took ownership). A nil source — the eager decode
// path — is a no-op.
func releaseStateSource(st *store.State) {
	if st != nil && st.Dataset != nil && st.Dataset.Source != nil {
		st.Dataset.Source.Release()
	}
}

// openFromState builds a DB over a decoded persisted state — the shared
// recovery core of OpenStore (snapshot from disk) and OpenReplica
// (snapshot shipped from a leader). The state carries the resolved engine
// configuration; cfg contributes only runtime knobs (Workers,
// CompactBytes, FsyncEvery). op names the caller for error messages.
func openFromState(st *store.State, cfg Config, op string) (*DB, error) {
	raw := st.Dataset // decoded fresh from disk or the wire; the DB is its only owner
	if err := raw.Validate(); err != nil {
		return nil, fmt.Errorf("onex: %s: snapshot dataset: %w", op, err)
	}
	normed, err := applyRecordedNorm(raw, st.Norm)
	if err != nil {
		return nil, fmt.Errorf("onex: %s: %w", op, err)
	}

	// The persisted state carries the resolved configuration: ST and the
	// length bounds inside the base, the rest in the snapshot META.
	cfg.ST = st.Base.ST
	cfg.MinLength = st.Base.MinLength
	cfg.MaxLength = st.Base.MaxLength
	cfg.Band = st.Band
	cfg.Exact = st.Exact
	cfg.KeepRaw = st.KeepRaw

	// newEngine verifies grouping.DatasetChecksum(normed) == base.DatasetSum,
	// so a snapshot whose dataset and index drifted apart fails here rather
	// than answering queries from a mismatched base.
	engine, err := newEngine(normed, st.Base, cfg)
	if err != nil {
		return nil, fmt.Errorf("onex: %s: %w", op, err)
	}
	return &DB{
		raw:     raw,
		normed:  normed,
		base:    st.Base,
		engine:  engine,
		cfg:     cfg,
		version: st.Version,
		id:      lastDBID.Add(1),
		values:  raw.Source, // owner reference when mmap-backed; nil otherwise
	}, nil
}

// applyRecordedNorm reconstructs the engine view of raw under a previously
// recorded transform. Unlike ts.NormalizeMinMax it never recomputes extrema:
// series ingested after Open may lie outside the open-time range, and the
// live DB normalized them against the recorded Min/Max, so recovery must do
// exactly the same arithmetic to be bit-identical.
func applyRecordedNorm(raw *ts.Dataset, norm ts.NormInfo) (*ts.Dataset, error) {
	if norm.Kind == ts.NormNone && raw.Source != nil {
		// No transform to apply (KeepRaw): the engine view is bit-identical
		// to the raw view, so both alias the same mmap-backed values and
		// nothing is materialized — this is the fully paged, beyond-RAM
		// configuration. Min-max falls through to the clone below: the
		// transform rewrites every value, so the normalized view must live
		// on the heap (the mapping is read-only), and only the raw view
		// stays paged.
		return raw.ShareValues(), nil
	}
	normed := raw.Clone()
	switch norm.Kind {
	case ts.NormNone:
		return normed, nil
	case ts.NormMinMax:
		span := norm.Max - norm.Min
		for _, s := range normed.Series {
			for i, v := range s.Values {
				if span == 0 {
					s.Values[i] = 0
				} else {
					s.Values[i] = (v - norm.Min) / span
				}
			}
		}
		normed.Norm = norm
		return normed, nil
	default:
		return nil, fmt.Errorf("onex: unsupported recorded normalization %v", norm.Kind)
	}
}

// stateLocked assembles the persistence view of the current DB. Callers hold
// db.mu (read or write); the engine encodes synchronously under that lock,
// so the referenced dataset and base cannot mutate mid-snapshot.
func (db *DB) stateLocked() *store.State {
	return &store.State{
		Dataset: db.raw,
		Norm:    db.normed.Norm,
		Base:    db.base,
		Version: db.version,
		Band:    db.cfg.Band,
		Exact:   db.cfg.Exact,
		KeepRaw: db.cfg.KeepRaw,
	}
}

// Snapshot persists the full current state to the attached store and resets
// its WAL (an explicit compaction). It blocks writers for the duration but
// not crash-safety: the swap is atomic, so a crash mid-snapshot leaves the
// previous state intact.
func (db *DB) Snapshot() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.store == nil {
		return ErrNoStore
	}
	if err := db.store.Snapshot(db.stateLocked()); err != nil {
		return fmt.Errorf("onex: Snapshot: %w", err)
	}
	db.storeErr = nil
	return nil
}

// StoreStatus reports the attached engine's persistence state, annotated
// with the DB's last background persistence error (a failed auto-compaction
// whose triggering ingest was still durable). ok is false when the DB has no
// store.
func (db *DB) StoreStatus() (st store.Status, ok bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.store == nil {
		return store.Status{}, false
	}
	st = db.store.Status()
	if db.storeErr != nil {
		st.LastError = db.storeErr.Error()
	}
	if db.values != nil {
		st.ValuesKind = db.values.Kind()
		st.MappedBytes = db.values.MappedBytes()
		st.MappedResidentBytes = db.values.ResidentBytes()
	}
	return st, true
}

// Close releases the attached storage engine, if any, and — for a DB
// opened with Config.MmapValues — the snapshot mapping its values alias.
// On an eager DB queries keep working afterwards (the dataset stays in
// memory) and only further AddSeries calls fail, because durability can no
// longer be honoured. On an mmap-backed DB subsequent queries fail with
// ErrMmapClosed; in-flight scans finish safely first (they hold pins on
// the mapping, so the actual unmap waits for the last reader). Close is
// idempotent and a no-op for in-memory databases.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.values != nil {
		db.values.Release()
		db.values = nil
		db.mmapClosed = true
	}
	if db.store == nil {
		return nil
	}
	err := db.store.Close()
	db.store = nil
	db.storeClosed = true
	if err != nil {
		return fmt.Errorf("onex: Close: %w", err)
	}
	return nil
}

// maybeCompactLocked folds the WAL into a fresh snapshot once it outgrows
// the configured threshold. Compaction failure must not fail the ingest that
// triggered it — the append was already durable — so the error is recorded
// for StoreStatus instead of returned.
func (db *DB) maybeCompactLocked() {
	if db.store == nil {
		return
	}
	threshold := db.cfg.CompactBytes
	if threshold < 0 {
		return
	}
	if threshold == 0 {
		threshold = DefaultCompactBytes
	}
	if db.store.Status().WALBytes < threshold {
		return
	}
	if err := db.store.Snapshot(db.stateLocked()); err != nil {
		db.storeErr = fmt.Errorf("auto-compaction: %w", err)
		return
	}
	db.storeErr = nil
}
