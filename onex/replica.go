package onex

import (
	"errors"
	"fmt"
	"os"

	"repro/internal/mmapdata"
	"repro/internal/store"
)

// ErrReadOnlyReplica is returned by AddSeries on a follower DB opened with
// OpenReplica: replicas mutate only through the leader's WAL stream
// (ApplyReplicated), never through direct writes.
var ErrReadOnlyReplica = errors.New("onex: read-only replica (write to the leader)")

// OpenReplica builds a read-only follower DB from a leader snapshot image
// (the bytes served by the leader's replication snapshot endpoint — the
// same format FileStore persists). The snapshot carries the full resolved
// configuration, so the follower reconstructs the leader's state
// bit-identically: at equal applied version, both answer Find, Analyze,
// and Stream from the same dataset, the same base, and the same engine
// configuration. cfg contributes only runtime knobs (Workers); cfg.Store
// must be nil — replicas do not persist locally, they re-bootstrap from
// the leader.
//
// The returned DB refuses AddSeries with ErrReadOnlyReplica; the leader's
// WAL records are applied in sequence with ApplyReplicated.
func OpenReplica(snapshot []byte, cfg Config) (*DB, error) {
	if cfg.Store != nil {
		return nil, errors.New("onex: OpenReplica: cfg.Store must be nil (replicas re-bootstrap from the leader)")
	}
	st, err := store.DecodeSnapshot(snapshot)
	if err != nil {
		return nil, fmt.Errorf("onex: OpenReplica: %w", err)
	}
	db, err := openFromState(st, cfg, "OpenReplica")
	if err != nil {
		return nil, err
	}
	db.replica = true
	return db, nil
}

// OpenReplicaFile is OpenReplica reading the snapshot image from a file
// instead of a byte slice. With cfg.MmapValues the file is memory-mapped
// and the follower serves zero-copy views over it — a follower of a
// beyond-RAM leader never materializes the shipped dataset (the replica
// bootstrap path spools the leader's snapshot to disk and opens it this
// way). Without MmapValues the file is read and decoded eagerly,
// equivalent to OpenReplica(os.ReadFile(path)).
//
// An mmap-backed replica must be Closed when it is discarded (e.g. on
// re-bootstrap) to release the mapping; see Config.MmapValues.
func OpenReplicaFile(path string, cfg Config) (*DB, error) {
	if cfg.Store != nil {
		return nil, errors.New("onex: OpenReplicaFile: cfg.Store must be nil (replicas re-bootstrap from the leader)")
	}
	if !cfg.MmapValues {
		blob, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("onex: OpenReplicaFile: %w", err)
		}
		return OpenReplica(blob, cfg)
	}
	st, err := mmapdata.OpenState(path)
	if err != nil {
		return nil, fmt.Errorf("onex: OpenReplicaFile: %w", err)
	}
	db, err := openFromState(st, cfg, "OpenReplicaFile")
	if err != nil {
		releaseStateSource(st)
		return nil, err
	}
	db.replica = true
	return db, nil
}

// IsReplica reports whether this DB is a read-only follower (OpenReplica).
func (db *DB) IsReplica() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.replica
}

// ApplyReplicated applies one leader WAL record to a follower DB. seq must
// be exactly Version()+1 — the same contiguity rule recovery replay
// enforces — so a follower can never silently skip or reorder leader
// mutations; out-of-sequence records are an error and the caller should
// re-bootstrap from a fresh snapshot. The mutation runs under the write
// lock and bumps Version, giving the follower the same
// version-observability contract as the leader (a query that observes
// version v sees every record up to v).
func (db *DB) ApplyReplicated(seq uint64, name string, values []float64) error {
	if name == "" {
		return errors.New("onex: ApplyReplicated: name required")
	}
	if len(values) == 0 {
		return errors.New("onex: ApplyReplicated: no values")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.replica {
		return errors.New("onex: ApplyReplicated: not a replica (use AddSeries)")
	}
	if err := db.checkValuesLocked(); err != nil {
		return err
	}
	if seq != db.version+1 {
		return fmt.Errorf("onex: ApplyReplicated: record seq %d does not follow version %d (lost records; re-bootstrap)", seq, db.version)
	}
	if err := db.applySeriesLocked(name, values); err != nil {
		return fmt.Errorf("onex: ApplyReplicated: seq %d (%q): %w", seq, name, err)
	}
	db.version++
	return nil
}

// ReplicationSource exposes the attached engine's replication view — the
// snapshot blob plus the seq-addressed WAL tail — when the engine supports
// it (FileStore does). The serving layer's leader endpoints stream from
// this. ok is false for in-memory DBs, replicas, and engines without
// replication support.
func (db *DB) ReplicationSource() (store.ReplicationSource, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	src, ok := db.store.(store.ReplicationSource)
	return src, ok && db.store != nil
}
