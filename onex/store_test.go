package onex

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/store"
)

// openStored builds a store-backed DB over the small fixture dataset in a
// fresh directory and returns both.
func openStored(t testing.TB, cfg Config) (*DB, string) {
	t.Helper()
	dir := t.TempDir()
	eng, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = eng
	if cfg.MinLength == 0 {
		cfg.MinLength = 4
	}
	if cfg.MaxLength == 0 {
		cfg.MaxLength = 10
	}
	db, err := Open(smallMatters(t), cfg)
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, dir
}

// sameResults asserts two DBs answer a battery of Find, Analyze and Stream
// requests identically: same matches in the same order at the same distances,
// same analysis output. This is the acceptance bar for warm open — a DB
// recovered from snapshot+WAL must be indistinguishable from the one that
// wrote it.
func sameResults(t *testing.T, want, got *DB) {
	t.Helper()
	ctx := context.Background()

	if wv, gv := want.Version(), got.Version(); wv != gv {
		t.Fatalf("version %d != %d", gv, wv)
	}
	ws, gs := want.Stats(), got.Stats()
	if ws != gs {
		t.Fatalf("stats %+v != %+v", gs, ws)
	}

	q, err := want.SeriesValues("MA")
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		{Values: q[0:8], K: 5},
		{Values: q[2:10], K: 3, Mode: ModeExact},
		{Values: q[0:6], MaxDist: 0.05},
		{Window: Window{Series: "MA", Start: 0, Length: 8}, Exclude: Exclude{Self: true}, K: 4},
	}
	for i, query := range queries {
		wr, werr := want.Find(ctx, query)
		gr, gerr := got.Find(ctx, query)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("query %d: err %v != %v", i, gerr, werr)
		}
		if werr != nil {
			continue
		}
		if len(wr.Matches) != len(gr.Matches) {
			t.Fatalf("query %d: %d matches != %d", i, len(gr.Matches), len(wr.Matches))
		}
		for j := range wr.Matches {
			sameMatch(t, fmt.Sprintf("query %d match %d", i, j), wr.Matches[j], gr.Matches[j])
		}
	}

	// Analysis: per-length base shape and the common-pattern ranking both
	// look directly at the grouping index, so any reconstruction drift in
	// the base shows up here.
	wa, err := want.Analyze(ctx, Analysis{Kind: AnalysisLengthSummaries})
	if err != nil {
		t.Fatal(err)
	}
	ga, err := got.Analyze(ctx, Analysis{Kind: AnalysisLengthSummaries})
	if err != nil {
		t.Fatal(err)
	}
	if len(wa.LengthSummaries) != len(ga.LengthSummaries) {
		t.Fatalf("length summaries %d != %d", len(ga.LengthSummaries), len(wa.LengthSummaries))
	}
	for i := range wa.LengthSummaries {
		if wa.LengthSummaries[i] != ga.LengthSummaries[i] {
			t.Fatalf("length summary %d: %+v != %+v", i, ga.LengthSummaries[i], wa.LengthSummaries[i])
		}
	}
	wc, err := want.Analyze(ctx, Analysis{Kind: AnalysisCommonPatterns, MinSeries: 2, K: 8})
	if err != nil {
		t.Fatal(err)
	}
	gc, err := got.Analyze(ctx, Analysis{Kind: AnalysisCommonPatterns, MinSeries: 2, K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(wc.Common) != len(gc.Common) {
		t.Fatalf("common patterns %d != %d", len(gc.Common), len(wc.Common))
	}
	for i := range wc.Common {
		w, g := wc.Common[i], gc.Common[i]
		if w.Length != g.Length || w.TotalMembers != g.TotalMembers || len(w.Series) != len(g.Series) {
			t.Fatalf("common %d: %+v != %+v", i, g, w)
		}
		for j := range w.Rep {
			if math.Abs(w.Rep[j]-g.Rep[j]) > 1e-12 {
				t.Fatalf("common %d rep[%d]: %g != %g", i, j, g.Rep[j], w.Rep[j])
			}
		}
	}

	// Stream: the progressive pipeline must certify the same exact answer.
	wx, err := want.Stream(ctx, Query{Values: q[0:8], K: 3})
	if err != nil {
		t.Fatal(err)
	}
	wres, err := wx.Wait()
	if err != nil {
		t.Fatal(err)
	}
	gx, err := got.Stream(ctx, Query{Values: q[0:8], K: 3})
	if err != nil {
		t.Fatal(err)
	}
	gres, err := gx.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(wres.Matches) != len(gres.Matches) {
		t.Fatalf("stream %d matches != %d", len(gres.Matches), len(wres.Matches))
	}
	for i := range wres.Matches {
		sameMatch(t, fmt.Sprintf("stream match %d", i), wres.Matches[i], gres.Matches[i])
	}
}

// TestOpenStoreEquivalence is the round-trip acceptance test: a DB opened
// from its snapshot answers every query class identically to the live DB
// that wrote it — including series ingested (and normalized against the
// open-time extrema) after the snapshot.
func TestOpenStoreEquivalence(t *testing.T) {
	live, dir := openStored(t, Config{})
	if err := live.AddSeries("ingested-1", []float64{5, 4, 3, 2, 1, 2, 3, 4, 5, 4, 3, 2}); err != nil {
		t.Fatal(err)
	}
	// Values outside the open-time min/max range: recovery must re-apply
	// the recorded transform, not recompute extrema.
	if err := live.AddSeries("ingested-2", []float64{120, 110, 100, 90, 80, 90, 100, 110, 120, 110, 100, 90}); err != nil {
		t.Fatal(err)
	}

	warm, err := OpenStore(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	sameResults(t, live, warm)

	names := warm.SeriesNames()
	found := 0
	for _, n := range names {
		if n == "ingested-1" || n == "ingested-2" {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("ingested series missing after warm open: %v", names)
	}
}

// TestOpenStoreCrashReplay exercises the WAL-tail path: ingests land in the
// log only (no compaction), the process "crashes" (Close without Snapshot),
// and a warm open must replay them onto the snapshot to reach the same state.
func TestOpenStoreCrashReplay(t *testing.T) {
	live, dir := openStored(t, Config{CompactBytes: -1}) // never fold the WAL
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("crash-%d", i)
		vals := make([]float64, 12)
		for j := range vals {
			vals[j] = float64(i+1) * math.Sin(float64(j)/2)
		}
		if err := live.AddSeries(name, vals); err != nil {
			t.Fatal(err)
		}
	}
	st, ok := live.StoreStatus()
	if !ok || st.WALRecords != 3 {
		t.Fatalf("expected 3 WAL records pending, status %+v ok=%v", st, ok)
	}
	if err := live.Close(); err != nil { // releases the dir; no snapshot taken
		t.Fatal(err)
	}

	warm, err := OpenStore(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	sameResults(t, live, warm)
}

// TestOpenStoreEmptyDir pins the cold-start signal: a store directory with
// no snapshot is not an error state, it is "build me cold".
func TestOpenStoreEmptyDir(t *testing.T) {
	_, err := OpenStore(t.TempDir(), Config{})
	if !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
}

// TestOpenStoreRejectsAttachedEngine: OpenStore owns its engine; passing one
// in is a contract violation, not a merge.
func TestOpenStoreRejectsAttachedEngine(t *testing.T) {
	eng, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := OpenStore(t.TempDir(), Config{Store: eng}); err == nil {
		t.Fatal("OpenStore accepted cfg.Store")
	}
}

// failingEngine wraps a real engine but fails every Append, to exercise the
// AddSeries rollback path.
type failingEngine struct {
	store.Engine
}

var errAppendBoom = errors.New("append boom")

func (f *failingEngine) Append(store.Record) error { return errAppendBoom }

// TestAddSeriesRollbackOnWALFailure: when the durable append fails, the
// in-memory insert is rolled back — version unchanged, series absent, and
// the DB still answers queries.
func TestAddSeriesRollbackOnWALFailure(t *testing.T) {
	dir := t.TempDir()
	eng, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(smallMatters(t), Config{MinLength: 4, MaxLength: 10, Store: &failingEngine{Engine: eng}})
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	defer db.Close()

	before := db.Version()
	beforeStats := db.Stats()
	err = db.AddSeries("doomed", []float64{1, 2, 3, 4, 5, 6, 7, 8})
	if !errors.Is(err, errAppendBoom) {
		t.Fatalf("AddSeries = %v, want wrapped append failure", err)
	}
	if db.Version() != before {
		t.Fatalf("version advanced to %d despite failed append", db.Version())
	}
	if db.Stats() != beforeStats {
		t.Fatalf("stats changed: %+v != %+v", db.Stats(), beforeStats)
	}
	if _, err := db.SeriesValues("doomed"); err == nil {
		t.Fatal("rolled-back series still resolvable")
	}
	// The DB remains fully queryable after the rollback.
	q, err := db.SeriesValues("MA")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Find(context.Background(), Query{Values: q[0:8]}); err != nil {
		t.Fatalf("query after rollback: %v", err)
	}
}

// TestAutoCompaction: with a tiny threshold every ingest folds the WAL into
// a fresh snapshot, so the log stays empty and a warm open needs no replay.
func TestAutoCompaction(t *testing.T) {
	db, dir := openStored(t, Config{CompactBytes: 1})
	if err := db.AddSeries("compact-me", []float64{1, 2, 3, 4, 5, 4, 3, 2, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	st, ok := db.StoreStatus()
	if !ok {
		t.Fatal("no store status on store-backed DB")
	}
	if st.WALRecords != 0 {
		t.Fatalf("%d WAL records after auto-compaction, want 0", st.WALRecords)
	}
	if st.Compactions < 2 { // initial snapshot + at least one auto-compaction
		t.Fatalf("compactions = %d, want >= 2", st.Compactions)
	}
	if st.SnapshotVersion != db.Version() {
		t.Fatalf("snapshot version %d != DB version %d", st.SnapshotVersion, db.Version())
	}

	warm, err := OpenStore(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if warm.Version() != db.Version() {
		t.Fatalf("warm version %d != live %d", warm.Version(), db.Version())
	}
}

// TestCloseSemantics: Close releases durability but not the in-memory DB —
// queries keep working, ingest refuses, Close is idempotent.
func TestCloseSemantics(t *testing.T) {
	db, _ := openStored(t, Config{})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
	q, err := db.SeriesValues("MA")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Find(context.Background(), Query{Values: q[0:8]}); err != nil {
		t.Fatalf("query after Close: %v", err)
	}
	if _, ok := db.StoreStatus(); ok {
		t.Fatal("StoreStatus ok after Close")
	}
	if err := db.Snapshot(); !errors.Is(err, ErrNoStore) {
		t.Fatalf("Snapshot after Close = %v, want ErrNoStore", err)
	}
	// Ingest refuses after Close: the caller was promised durability and
	// the DB can no longer honour it.
	if err := db.AddSeries("late", []float64{1, 2, 3, 4, 5, 6, 7, 8}); err == nil {
		t.Fatal("AddSeries accepted after Close released durability")
	}
}

// TestSnapshotWithoutStore: the persistence API on an in-memory DB signals
// ErrNoStore rather than pretending to persist.
func TestSnapshotWithoutStore(t *testing.T) {
	db := openSmall(t)
	if err := db.Snapshot(); !errors.Is(err, ErrNoStore) {
		t.Fatalf("Snapshot = %v, want ErrNoStore", err)
	}
	if _, ok := db.StoreStatus(); ok {
		t.Fatal("StoreStatus ok on in-memory DB")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close on in-memory DB = %v", err)
	}
}

// TestConcurrentIngestWithStore drives ingest, queries and snapshots
// concurrently against a store-backed DB — the -race job's target. After the
// dust settles, a warm open must equal the live DB exactly.
func TestConcurrentIngestWithStore(t *testing.T) {
	live, dir := openStored(t, Config{})
	q, err := live.SeriesValues("MA")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				name := fmt.Sprintf("conc-%d-%d", w, i)
				vals := make([]float64, 12)
				for j := range vals {
					vals[j] = float64(w) + float64(i)*0.1 + math.Cos(float64(j))
				}
				if err := live.AddSeries(name, vals); err != nil {
					t.Errorf("AddSeries %s: %v", name, err)
					return
				}
				if _, err := live.Find(context.Background(), Query{Values: q[0:8], K: 2}); err != nil {
					t.Errorf("Find during ingest: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := live.Snapshot(); err != nil {
				t.Errorf("Snapshot during ingest: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	warm, err := OpenStore(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	sameResults(t, live, warm)
}
