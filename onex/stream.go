package onex

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/core"
)

// streamStallTimeout bounds how long one Update may wait for its consumer.
// The walk holds the DB's read lock (like Find), so an abandoned consumer
// must not be able to pin it forever: a writer queued behind a pinned read
// lock would block every later query on the DB. A var, not a const, so
// tests can shrink it.
var streamStallTimeout = 30 * time.Second

// ErrStreamStalled aborts an Exploration whose consumer stopped taking
// updates: no update was received within the stall bound and the walk was
// cancelled to release its resources (and the DB read lock).
var ErrStreamStalled = errors.New("onex: Stream: consumer did not take an update within the stall bound")

// Update is one snapshot of a progressive query: the current answer, how
// much of it is already provably final, and the work done so far. A
// Stream emits the approximate top-k first (the same result Find returns
// in approx mode), then one Update per certified refinement wave, and
// terminates with a Final update whose Matches, Query, and Stats equal
// the exact-mode Find result.
type Update struct {
	// Seq numbers the updates of one exploration, starting at 0 (the
	// approximate answer).
	Seq int `json:"seq"`
	// Matches is the current top-k, best first. Intermediate updates omit
	// warping paths (Match.Path); the final update carries them.
	Matches []Match `json:"matches"`
	// Certified is parallel to Matches: Certified[i] reports that
	// Matches[i] provably belongs to the final exact answer with its
	// exact distance — no unrefined group can contain a better candidate.
	// Certification is monotone (once true it stays true) and every flag
	// is true in the final update.
	Certified []bool `json:"certified"`
	// Wave is the refinement wave this update closes: 0 for the
	// approximate phase, then 1..N.
	Wave int `json:"wave"`
	// GroupsRemaining counts candidate groups not yet refined or
	// certified-skipped; it reaches 0 at the final update.
	GroupsRemaining int `json:"groups_remaining"`
	// Final marks the terminating update.
	Final bool `json:"final"`
	// Query echoes the resolved request (identical in every update).
	Query Query `json:"query"`
	// Stats is the cumulative search work behind this snapshot.
	Stats QueryStats `json:"stats"`
}

// Exploration is a live progressive query: a handle over the stream of
// Updates one Stream call emits. The zero value is not usable; Stream
// constructs it.
//
// The consuming pattern:
//
//	x, err := db.Stream(ctx, q)
//	if err != nil { ... }
//	defer x.Close()
//	for u := range x.Updates() {
//	    render(u) // first the approximate answer, then each wave
//	}
//	if err := x.Err(); err != nil { ... }
//
// Updates are delivered synchronously from the search: the walk blocks on
// an unbuffered channel until the consumer takes each snapshot, so a slow
// consumer applies backpressure to the search instead of accumulating
// stale snapshots. The wait is bounded: a consumer that takes no update
// for 30s is treated as gone — the walk aborts, the stream closes, and
// Err reports ErrStreamStalled (the walk holds the DB read lock, which an
// abandoned consumer must not pin forever). Cancelling the context passed
// to Stream (or calling Close) stops the walk within one pruning round.
type Exploration struct {
	updates chan Update
	cancel  context.CancelFunc
	once    sync.Once

	// written by the search goroutine before updates closes; the channel
	// close is the synchronization point.
	err   error
	final Update
	done  bool
}

// Updates returns the stream. It is closed after the final update — or
// early, when the walk fails or is cancelled; check Err afterwards.
func (x *Exploration) Updates() <-chan Update { return x.updates }

// Err reports how the stream ended: nil after a final update, ctx.Err()
// after a cancellation, or the search error. Only valid once Updates is
// closed (e.g. after the range loop ends or Wait returns).
func (x *Exploration) Err() error { return x.err }

// Close cancels the underlying walk and drains the stream. It is
// idempotent and safe to call at any point — including after the stream
// completed normally, making `defer x.Close()` the standard cleanup.
func (x *Exploration) Close() {
	x.once.Do(func() {
		x.cancel()
		for range x.updates {
		}
	})
}

// Wait drains the stream and returns the final update as a Result — the
// "run the progressive pipeline one-shot" spelling, equivalent to Find in
// exact mode. It returns the stream error when the walk failed or was
// cancelled before finishing.
func (x *Exploration) Wait() (Result, error) {
	for range x.updates {
	}
	if x.err != nil {
		return Result{}, x.err
	}
	if !x.done {
		return Result{}, errors.New("onex: Stream: stream ended without a final update")
	}
	return Result{Matches: x.final.Matches, Query: x.final.Query, Stats: x.final.Stats}, nil
}

// Stream executes a Query progressively: it returns immediately with an
// Exploration whose Updates channel delivers the approximate top-k as
// soon as it is known, then one refined snapshot per certified wave, and
// finally the exact answer. Stream always refines to the certified-exact
// result regardless of Query.Mode (the resolved query echoes ModeExact);
// use Find for one-shot approximate answers. Range queries (MaxDist > 0)
// are not streamable — their certified scan has no approximate phase —
// and are rejected.
//
// Validation errors (unknown series, contradictory fields, negative
// Workers) are returned synchronously; errors after the stream starts —
// including ctx cancellation — surface through Exploration.Err. The
// search holds the DB's read lock for its whole run, exactly like Find:
// concurrent queries proceed, AddSeries waits.
func (db *DB) Stream(ctx context.Context, q Query) (*Exploration, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if q.MaxDist > 0 {
		return nil, errors.New("onex: Stream: range queries (MaxDist > 0) are not streamable; use Find")
	}
	// The stream's whole point is the approximate-then-exact refinement,
	// so the target mode is always exact.
	q.Mode = ModeExact

	// Validate synchronously so malformed queries fail at the call site,
	// not through Err. The goroutine re-resolves under its own lock
	// acquisition: series can only be added, never removed, so a query
	// valid now stays valid (and a failure there still surfaces via Err).
	db.mu.RLock()
	_, err := db.resolveQuery(q, false)
	if err == nil {
		err = db.checkValuesLocked()
	}
	db.mu.RUnlock()
	if err != nil {
		return nil, err
	}

	sctx, cancel := context.WithCancel(ctx)
	x := &Exploration{updates: make(chan Update), cancel: cancel}
	go func() {
		defer close(x.updates)
		defer cancel()
		start := time.Now()
		db.mu.RLock()
		defer db.mu.RUnlock()
		// Stream returned before this goroutine took the read lock, so a
		// concurrent Close may have released an mmap-backed DB's mapping in
		// the gap; re-check before the walk dereferences any values.
		if err := db.checkValuesLocked(); err != nil {
			x.err = err
			return
		}
		rq, err := db.resolveQuery(q, false)
		if err != nil {
			x.err = err
			return
		}
		stalled := false
		fo := rq.fo
		fo.Progress = func(s core.Snapshot) {
			// The exact conversion Find applies, so the final update equals
			// the one-shot Find result field for field.
			res := db.publicResult(rq.eff, s.Matches, s.Stats, start)
			u := Update{
				Seq:             s.Seq,
				Matches:         res.Matches,
				Certified:       s.Certified,
				Wave:            s.Wave,
				GroupsRemaining: s.GroupsRemaining,
				Final:           s.Final,
				Query:           res.Query,
				Stats:           res.Stats,
			}
			if s.Final {
				x.final, x.done = u, true
			}
			if stalled {
				return // already aborting; the walk exits at its next poll
			}
			stall := time.NewTimer(streamStallTimeout)
			defer stall.Stop()
			select {
			case x.updates <- u:
			case <-sctx.Done():
				// The consumer is gone; the walk notices sctx at its next
				// poll and aborts within one pruning round.
			case <-stall.C:
				// The consumer stopped taking updates without closing the
				// stream. Cancel the walk rather than pin the DB read lock
				// behind a dead peer; Err reports the stall distinctly.
				stalled = true
				cancel()
			}
		}
		_, err = db.engine.Find(sctx, rq.qvec, fo)
		if stalled {
			// The consumer missed at least the update being sent when the
			// stall fired, so the stream is truncated from its point of
			// view even if the walk ran to completion (a stall on the
			// terminating snapshot leaves no ctx poll to abort on).
			// Report the stall unless a more specific error occurred.
			if err == nil || errors.Is(err, context.Canceled) {
				err = ErrStreamStalled
			}
			x.done = false
		}
		x.err = err
	}()
	return x, nil
}
