package onex

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/store"
	"repro/internal/ts"
)

// benchDataset is the warm-start benchmark workload: 30 CBF series of 96
// points each gives the grouping build enough subsequences to dominate a
// cold open, which is exactly the cost the snapshot exists to amortize.
func benchDataset() *ts.Dataset {
	return gen.CBF(gen.CBFOptions{PerClass: 10, Length: 96, Seed: 1})
}

var benchCfg = Config{MinLength: 8, MaxLength: 24}

// BenchmarkOpenSnapshot compares the two ways to reach a queryable DB:
// "rebuild" pays the full grouping construction; "warm" decodes the
// snapshot and checksum-verifies it against the rebuilt index. The ratio is
// the restart-latency win a deployment buys by passing -store. Results are
// tracked in BENCH_store.json.
func BenchmarkOpenSnapshot(b *testing.B) {
	d := benchDataset()

	b.Run("rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Open(d.Clone(), benchCfg); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		eng, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		db, err := Open(d.Clone(), Config{MinLength: benchCfg.MinLength, MaxLength: benchCfg.MaxLength, Store: eng})
		if err != nil {
			eng.Close()
			b.Fatal(err)
		}
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			warm, err := OpenStore(dir, Config{})
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := warm.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
}

// BenchmarkOpenMmap compares the two warm-open value strategies over the
// same snapshot: "eager" decodes every float64 run onto the heap, "mmap"
// leaves them in the page-cache-backed mapping. The timed region is the
// open alone (the restart-latency question); each iteration still answers
// one untimed query so a broken open can't benchmark well. The untimed
// live_heap_bytes metric is the steady-state heap an open DB retains — the
// beyond-RAM headline: the mapped open keeps the raw value arrays out of
// it. Results are tracked in BENCH_store.json.
func BenchmarkOpenMmap(b *testing.B) {
	d := benchDataset()
	dir := b.TempDir()
	eng, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	db, err := Open(d.Clone(), Config{MinLength: benchCfg.MinLength, MaxLength: benchCfg.MaxLength, Store: eng})
	if err != nil {
		eng.Close()
		b.Fatal(err)
	}
	q := append([]float64(nil), d.Series[0].Values[0:16]...)
	if err := db.Close(); err != nil {
		b.Fatal(err)
	}

	for _, mode := range []struct {
		name string
		mmap bool
	}{{"eager", false}, {"mmap", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				warm, err := OpenStore(dir, Config{MmapValues: mode.mmap})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if _, err := warm.Find(context.Background(), Query{Values: q, K: 3}); err != nil {
					b.Fatal(err)
				}
				if err := warm.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.StopTimer()
			b.ReportMetric(liveHeapBytes(b, dir, mode.mmap), "live_heap_bytes")
		})
	}
}

// liveHeapBytes measures the heap retained by one open DB: GC to a
// quiescent baseline, open, GC again, and diff HeapAlloc while the DB is
// still referenced.
func liveHeapBytes(b *testing.B, dir string, mmap bool) float64 {
	b.Helper()
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	warm, err := OpenStore(dir, Config{MmapValues: mmap})
	if err != nil {
		b.Fatal(err)
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	delta := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if err := warm.Close(); err != nil {
		b.Fatal(err)
	}
	if delta < 0 {
		delta = 0
	}
	return float64(delta)
}
