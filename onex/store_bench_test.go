package onex

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/store"
	"repro/internal/ts"
)

// benchDataset is the warm-start benchmark workload: 30 CBF series of 96
// points each gives the grouping build enough subsequences to dominate a
// cold open, which is exactly the cost the snapshot exists to amortize.
func benchDataset() *ts.Dataset {
	return gen.CBF(gen.CBFOptions{PerClass: 10, Length: 96, Seed: 1})
}

var benchCfg = Config{MinLength: 8, MaxLength: 24}

// BenchmarkOpenSnapshot compares the two ways to reach a queryable DB:
// "rebuild" pays the full grouping construction; "warm" decodes the
// snapshot and checksum-verifies it against the rebuilt index. The ratio is
// the restart-latency win a deployment buys by passing -store. Results are
// tracked in BENCH_store.json.
func BenchmarkOpenSnapshot(b *testing.B) {
	d := benchDataset()

	b.Run("rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Open(d.Clone(), benchCfg); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		eng, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		db, err := Open(d.Clone(), Config{MinLength: benchCfg.MinLength, MaxLength: benchCfg.MaxLength, Store: eng})
		if err != nil {
			eng.Close()
			b.Fatal(err)
		}
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			warm, err := OpenStore(dir, Config{})
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := warm.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
}
