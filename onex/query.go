package onex

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/ts"
)

// Window addresses the window [Start, Start+Length) of a named series as
// the query input — the demo's "brush a region of a loaded series" flow.
type Window struct {
	Series string `json:"series"`
	Start  int    `json:"start"`
	Length int    `json:"length"`
}

func (w Window) isZero() bool { return w == Window{} }

// Exclude narrows which candidates a query may return.
type Exclude struct {
	// Self excludes candidates overlapping the query Window, so a window
	// query is never answered with itself. Requires a Window query.
	Self bool `json:"self,omitempty"`
	// Series excludes whole series by name ("which other state looks like
	// MA?" excludes MA itself).
	Series []string `json:"series,omitempty"`
}

// Lengths bounds the candidate subsequence lengths of a query. Zero values
// mean the full indexed range.
type Lengths struct {
	Min int `json:"min,omitempty"`
	Max int `json:"max,omitempty"`
}

// QueryMode selects the search guarantee for one query.
type QueryMode string

// Query modes. The zero value inherits the DB's configuration
// (Config.Exact).
const (
	// ModeDefault uses the mode the DB was opened with.
	ModeDefault QueryMode = ""
	// ModeApprox is the paper's search: explore only the most promising
	// groups. Fastest, empirically near-exact.
	ModeApprox QueryMode = "approx"
	// ModeExact prunes with certified bounds and returns the provably best
	// matches.
	ModeExact QueryMode = "exact"
)

// Norm selects how matches of different lengths are ranked against each
// other for one query.
type Norm string

// Ranking normalizations.
const (
	// NormDefault uses the DB's ranking (length-normalized).
	NormDefault Norm = ""
	// NormLength ranks by DTW / max(query length, match length): fair
	// comparison across lengths, directly comparable with Config.ST.
	NormLength Norm = "length"
	// NormRaw ranks by raw DTW cost.
	NormRaw Norm = "raw"
)

// Query is the single composable request type behind every similarity
// scenario: best match, top-K, range ("everything within MaxDist"),
// constrained variants of each, and any combination — executed by DB.Find.
// The zero value of every field selects a sensible default, so the
// simplest query is Query{Values: q}.
type Query struct {
	// Values is an ad-hoc query in original units. Mutually exclusive with
	// Window; exactly one of the two must be set.
	Values []float64 `json:"values,omitempty"`
	// Window selects a window of a loaded series as the query.
	Window Window `json:"window,omitzero"`
	// K requests the top-K matches (default 1). In range mode (MaxDist >
	// 0) it caps the result count instead (0 = unlimited).
	K int `json:"k,omitempty"`
	// MaxDist, when positive, switches to range semantics: return every
	// candidate whose distance is at most MaxDist (same units as
	// Match.Dist), best first.
	MaxDist float64 `json:"max_dist,omitempty"`
	// Exclude removes candidates: the query's own window and/or whole
	// series.
	Exclude Exclude `json:"exclude,omitzero"`
	// Lengths bounds candidate lengths; zero means the full indexed range.
	Lengths Lengths `json:"lengths,omitzero"`
	// Mode overrides the DB's search mode for this query. Range queries
	// (MaxDist > 0) always run the certified scan regardless — the result
	// set is provably complete within MaxDist — and echo ModeExact in the
	// resolved query.
	Mode QueryMode `json:"mode,omitempty"`
	// Band overrides the DB's Sakoe-Chiba width for this query (0 =
	// inherit, negative = unconstrained).
	Band int `json:"band,omitempty"`
	// LengthNorm overrides how variable-length matches are ranked.
	LengthNorm Norm `json:"length_norm,omitempty"`
	// Workers bounds the worker pool this one query may spread its group
	// scans across (0 = GOMAXPROCS; negative values are rejected). Results
	// are identical at every setting — Workers: 1 runs the serial engine —
	// only the wall time changes. The HTTP server additionally caps the
	// value per request so one query cannot monopolize the box.
	Workers int `json:"workers,omitempty"`
}

// QueryStats reports the work one Find call did — the measurable side of
// the paper's "early pruning of unpromising candidates".
type QueryStats struct {
	// Groups is the number of candidate groups considered.
	Groups int `json:"groups"`
	// GroupsPruned counts groups dropped without a member scan: by lower
	// bounds, an abandoned representative DTW, or the certified transfer
	// bound. Disjoint from GroupsRefined.
	GroupsPruned int `json:"groups_pruned"`
	// GroupsRefined counts groups whose members were scanned.
	GroupsRefined int `json:"groups_refined"`
	// Candidates is the total membership of the refined groups.
	Candidates int `json:"candidates"`
	// DTWs is the number of DTW dynamic programs started (representatives
	// plus members; the rest were pruned by LB_Kim / LB_Keogh).
	DTWs int `json:"dtws"`
	// WallMicros is the end-to-end Find latency in microseconds.
	WallMicros int64 `json:"wall_micros"`
}

// Result is one Find call's outcome. Matches serialize with Go field
// casing (Series, Dist, ...), matching the legacy routes' wire format,
// while the envelope fields use lowercase JSON names.
type Result struct {
	// Matches is the result set, best first.
	Matches []Match `json:"matches"`
	// Query echoes the request with every default resolved (K, Lengths,
	// Mode, Band, LengthNorm, Workers), so callers see exactly what was
	// executed.
	Query Query `json:"query"`
	// Stats reports the search work and wall time.
	Stats QueryStats `json:"stats"`
}

// ErrNoMatch is returned by Find (and the legacy query methods) when no
// indexed candidate satisfies the query constraints.
var ErrNoMatch = core.ErrNoMatch

// Find executes a Query: the unified, context-aware entry point behind
// every similarity scenario. Cancelling ctx aborts the search between
// pruning rounds and returns ctx.Err(), so long exact-mode scans stop
// promptly.
//
// Semantics by field combination:
//   - K alone: top-K most similar candidates (K = 0 means 1).
//   - MaxDist > 0: every candidate within MaxDist, best first, capped at K
//     (K = 0 means unlimited).
//   - Exclude / Lengths constrain either flavour.
//   - Mode / Band / LengthNorm override the Open-time configuration for
//     this call only.
//
// Find is safe to call concurrently with other queries and with AddSeries.
func (db *DB) Find(ctx context.Context, q Query) (Result, error) {
	return db.find(ctx, q, q.MaxDist > 0)
}

// find is Find with the range/top-K decision made by the caller, so the
// legacy WithinThreshold wrapper can force range semantics for its
// MaxDist = 0 edge case.
func (db *DB) find(ctx context.Context, q Query, rangeMode bool) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	db.mu.RLock()
	defer db.mu.RUnlock()
	if err := db.checkValuesLocked(); err != nil {
		return Result{}, err
	}

	rq, err := db.resolveQuery(q, rangeMode)
	if err != nil {
		return Result{}, err
	}
	res, err := db.engine.Find(ctx, rq.qvec, rq.fo)
	if err != nil {
		return Result{}, err
	}
	return db.publicResult(rq.eff, res.Matches, res.Stats, start), nil
}

// resolvedQuery is a Query resolved against the DB's configuration: the
// fully-defaulted echo, the query vector in engine units, and the core
// call options. Produced by resolveQuery, consumed by find and Stream.
type resolvedQuery struct {
	eff  Query
	qvec []float64
	fo   core.FindOptions
}

// resolveQuery validates q, resolves every default against the Open-time
// configuration, and maps the public request onto core types. Callers
// hold db.mu.
func (db *DB) resolveQuery(q Query, rangeMode bool) (resolvedQuery, error) {
	eff := q

	// Per-query mode, band, and ranking normalization default to the
	// configuration the DB was opened with.
	mode := core.ModeApprox
	if db.cfg.Exact {
		mode = core.ModeExact
	}
	switch q.Mode {
	case ModeDefault:
	case ModeApprox:
		mode = core.ModeApprox
	case ModeExact:
		mode = core.ModeExact
	default:
		return resolvedQuery{}, fmt.Errorf("onex: Find: unknown mode %q (want %q or %q)", q.Mode, ModeApprox, ModeExact)
	}
	if mode == core.ModeExact || rangeMode {
		// Range scans are certified-exact whatever mode was requested;
		// echo what actually runs.
		eff.Mode = ModeExact
	} else {
		eff.Mode = ModeApprox
	}

	band := q.Band
	if band == 0 {
		band = db.cfg.Band
	}
	eff.Band = band

	// Per-query parallelism, validated like Config.Workers; the resolved
	// pool size is echoed so callers see what ran.
	if q.Workers < 0 {
		return resolvedQuery{}, fmt.Errorf("onex: Find: Workers = %d must be non-negative (0 = GOMAXPROCS)", q.Workers)
	}
	workers := q.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	eff.Workers = workers

	lengthNorm := true
	switch q.LengthNorm {
	case NormDefault, NormLength:
		eff.LengthNorm = NormLength
	case NormRaw:
		lengthNorm = false
	default:
		return resolvedQuery{}, fmt.Errorf("onex: Find: unknown length norm %q (want %q or %q)", q.LengthNorm, NormLength, NormRaw)
	}

	// Resolve the query vector into the engine's normalized space.
	var (
		qvec       []float64
		self       ts.SubSeq
		haveWindow = !q.Window.isZero()
	)
	switch {
	case len(q.Values) > 0 && haveWindow:
		return resolvedQuery{}, errors.New("onex: Find: provide Values or Window, not both")
	case len(q.Values) > 0:
		qvec = db.normalizeQuery(q.Values)
	case haveWindow:
		si := db.normed.IndexOf(q.Window.Series)
		if si < 0 {
			return resolvedQuery{}, fmt.Errorf("onex: unknown series %q", q.Window.Series)
		}
		self = ts.SubSeq{Series: si, Start: q.Window.Start, Length: q.Window.Length}
		if err := self.Validate(db.normed); err != nil {
			return resolvedQuery{}, fmt.Errorf("onex: Find: %w", err)
		}
		qvec = self.Values(db.normed)
	default:
		return resolvedQuery{}, errors.New("onex: Find: empty query: provide Values or a Window")
	}

	cons := core.QueryConstraints{MinLength: q.Lengths.Min, MaxLength: q.Lengths.Max}
	if q.Exclude.Self {
		if !haveWindow {
			return resolvedQuery{}, errors.New("onex: Find: Exclude.Self requires a Window query")
		}
		cons.ExcludeOverlap = self
	}
	if len(q.Exclude.Series) > 0 {
		cons.ExcludeSeries = make(map[int]bool, len(q.Exclude.Series))
		for _, name := range q.Exclude.Series {
			si := db.normed.IndexOf(name)
			if si < 0 {
				return resolvedQuery{}, fmt.Errorf("onex: Find: unknown series %q in Exclude.Series", name)
			}
			cons.ExcludeSeries[si] = true
		}
	}

	k := q.K
	if !rangeMode && k < 1 {
		k = 1
	}
	eff.K = k
	if eff.Lengths.Min <= 0 {
		eff.Lengths.Min = db.base.MinLength
	}
	if eff.Lengths.Max <= 0 {
		eff.Lengths.Max = db.base.MaxLength
	}

	return resolvedQuery{
		eff:  eff,
		qvec: qvec,
		fo: core.FindOptions{
			Options:     core.Options{Band: band, Mode: mode, LengthNorm: lengthNorm, Workers: workers},
			K:           k,
			Range:       rangeMode,
			MaxDist:     q.MaxDist,
			Constraints: cons,
		},
	}, nil
}

// publicResult converts one core answer (matches plus statistics) to the
// public Result shape. Callers hold db.mu.
func (db *DB) publicResult(eff Query, ms []core.Match, st core.SearchStats, start time.Time) Result {
	out := Result{Query: eff, Matches: make([]Match, len(ms))}
	for i, m := range ms {
		out.Matches[i] = db.publicMatch(m)
	}
	out.Stats = QueryStats{
		Groups:        st.Groups,
		GroupsPruned:  st.GroupsLBPruned,
		GroupsRefined: st.GroupsRefined,
		Candidates:    st.Members,
		DTWs:          st.DTWs(),
		WallMicros:    time.Since(start).Microseconds(),
	}
	return out
}
