package onex

import (
	"sync"
	"testing"
)

// TestVersionSemantics pins the contract result caches key on: Version
// starts at 1, bumps exactly once per successful AddSeries, and does not
// move on a failed one.
func TestVersionSemantics(t *testing.T) {
	db := openSmall(t)
	if v := db.Version(); v != 1 {
		t.Fatalf("fresh DB version = %d, want 1", v)
	}
	if err := db.AddSeries("v1", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}); err != nil {
		t.Fatal(err)
	}
	if v := db.Version(); v != 2 {
		t.Fatalf("after one ingest version = %d, want 2", v)
	}
	// Failed ingests (duplicate name, empty values, missing name) must not
	// bump: nothing changed, caches stay valid.
	for _, bad := range []struct {
		name string
		vals []float64
	}{
		{"v1", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
		{"no-values", nil},
		{"", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
	} {
		if err := db.AddSeries(bad.name, bad.vals); err == nil {
			t.Fatalf("AddSeries(%q, %d values) unexpectedly succeeded", bad.name, len(bad.vals))
		}
		if v := db.Version(); v != 2 {
			t.Fatalf("failed ingest of %q moved version to %d", bad.name, v)
		}
	}
	if err := db.AddSeries("v2", []float64{2, 3, 4, 5, 6, 7, 8, 9, 10, 11}); err != nil {
		t.Fatal(err)
	}
	if v := db.Version(); v != 3 {
		t.Fatalf("after two ingests version = %d, want 3", v)
	}
}

// TestIDUniquePerInstance pins the other half of the cache-key contract:
// every Open yields a distinct ID, it never changes across mutations, and
// two instances at the same Version are still distinguishable — that is
// exactly what keeps a cache from serving one incarnation's answers for
// its same-named replacement.
func TestIDUniquePerInstance(t *testing.T) {
	a := openSmall(t)
	b := openSmall(t)
	if a.ID() == b.ID() {
		t.Fatalf("two Opens share ID %d", a.ID())
	}
	if a.Version() != b.Version() {
		t.Fatalf("fresh versions differ: %d vs %d", a.Version(), b.Version())
	}
	id := a.ID()
	if err := a.AddSeries("idtest", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}); err != nil {
		t.Fatal(err)
	}
	if a.ID() != id {
		t.Fatalf("ID changed across AddSeries: %d -> %d", id, a.ID())
	}
}

// TestVersionConcurrentMonotone reads the version from many goroutines
// while ingests run, asserting per-reader monotonicity and the exact final
// count. Run under -race in CI.
func TestVersionConcurrentMonotone(t *testing.T) {
	db := openSmall(t)
	const ingests = 8
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
		for i := range ingests {
			if err := db.AddSeries("c"+string(rune('a'+i)), vals); err != nil {
				t.Errorf("ingest %d: %v", i, err)
				return
			}
		}
	}()
	for range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for range 200 {
				v := db.Version()
				if v < last {
					t.Errorf("version went backwards: %d -> %d", last, v)
					return
				}
				last = v
			}
		}()
	}
	wg.Wait()
	if v := db.Version(); v != 1+ingests {
		t.Fatalf("final version = %d, want %d", v, 1+ingests)
	}
}
