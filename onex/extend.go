package onex

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/grouping"
	"repro/internal/store"
	"repro/internal/ts"
)

// WithinThreshold returns every indexed subsequence whose length-normalized
// DTW distance from the query (original units) is at most maxDist, best
// first, capped at limit (0 = unlimited). Sweeping maxDist reproduces the
// demo's "changes in similarity for varying parameters" exploration.
//
// Deprecated: use Find with Query{Values: q, MaxDist: maxDist, K: limit}.
func (db *DB) WithinThreshold(q []float64, maxDist float64, limit int) ([]Match, error) {
	// Forced range mode keeps the maxDist = 0 edge case ("exact matches
	// only") behaving as it always has.
	res, err := db.find(context.Background(), Query{Values: q, MaxDist: maxDist, K: limit}, true)
	if err != nil {
		return nil, err
	}
	return res.Matches, nil
}

// AddSeries appends a new series (original units) to the open database and
// incrementally indexes its subsequences into the base — the demo's "load
// new data" flow without a rebuild. Values falling outside the
// normalization range seen at Open time are mapped linearly beyond [0,1],
// which keeps all distances consistent. AddSeries is safe to call
// concurrently with queries: it takes the DB's write lock, so in-flight
// queries finish first and new ones wait for the insert.
//
// With a store attached, the series is logged to the write-ahead log and
// fsynced before AddSeries returns (and before Version advances): a nil
// error means the ingest survives a crash. A failed append rolls the
// in-memory insert back, so memory and disk never disagree about Version.
func (db *DB) AddSeries(name string, values []float64) error {
	if name == "" {
		return errors.New("onex: AddSeries: name required")
	}
	if len(values) == 0 {
		return errors.New("onex: AddSeries: no values")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.replica {
		return ErrReadOnlyReplica
	}
	if db.storeClosed {
		return errors.New("onex: AddSeries: store closed (durability released); reopen with OpenStore")
	}
	if err := db.applySeriesLocked(name, values); err != nil {
		return fmt.Errorf("onex: AddSeries: %w", err)
	}
	if db.store != nil {
		rec := store.Record{Seq: db.version + 1, Name: name, Values: values}
		if err := db.store.Append(rec); err != nil {
			db.unapplySeriesLocked(name)
			return fmt.Errorf("onex: AddSeries: wal: %w", err)
		}
	}
	// Still under the write lock: any reader that subsequently observes the
	// new version is guaranteed to see the ingested series too.
	db.version++
	db.maybeCompactLocked()
	return nil
}

// applySeriesLocked performs the in-memory half of an ingest: append to both
// dataset views, index into the base, rebind the engine. On error the DB is
// unchanged. Callers hold the write lock (or exclusive access, during
// recovery replay) and are responsible for bumping version afterwards.
func (db *DB) applySeriesLocked(name string, values []float64) error {
	if _, dup := db.raw.ByName(name); dup {
		return fmt.Errorf("series %q already exists", name)
	}
	if err := db.raw.Add(ts.NewSeries(name, values)); err != nil {
		return err
	}
	var normVals []float64
	if db.cfg.KeepRaw {
		normVals = make([]float64, len(values))
		copy(normVals, values)
	} else {
		normVals = db.normalizeQuery(values)
	}
	ns := ts.NewSeries(name, normVals)
	if err := db.normed.Add(ns); err != nil {
		// Roll back the raw append (name index included) to stay consistent.
		db.raw.Remove(name)
		return err
	}
	if err := db.base.AddSeries(db.normed, db.normed.Len()-1); err != nil {
		// grouping.AddSeries validates before touching the base, so removing
		// the freshly appended series from both datasets restores the
		// pre-call state exactly (no dangling name-index entries).
		db.raw.Remove(name)
		db.normed.Remove(name)
		return err
	}
	// The engine binds dataset+base by checksum; rebind after the change
	// (still under the write lock, so no query observes the stale binding).
	engine, err := newEngine(db.normed, db.base, db.cfg)
	if err != nil {
		db.unapplySeriesLocked(name)
		return fmt.Errorf("rebind engine: %w", err)
	}
	db.engine = engine
	return nil
}

// unapplySeriesLocked is applySeriesLocked's inverse, used when the durable
// append fails after the in-memory insert succeeded. It is only sound for
// the most recently added series (grouping.RemoveSeries's contract). Callers
// hold the write lock.
func (db *DB) unapplySeriesLocked(name string) {
	si := db.normed.Len() - 1
	db.raw.Remove(name)
	db.normed.Remove(name)
	db.base.RemoveSeries(db.normed, si)
	// Rebind over the restored state; the pre-insert engine referenced the
	// same (now restored) dataset and base, so failure here is impossible in
	// practice — keep the old binding if it somehow happens.
	if engine, err := newEngine(db.normed, db.base, db.cfg); err == nil {
		db.engine = engine
	}
}

// CommonShape is a shape shared across several series, in original units.
type CommonShape struct {
	Length int
	// Series names the distinct series the shape recurs in.
	Series []string
	// Rep is the shared shape in original units.
	Rep []float64
	// TotalMembers is the full cardinality of the underlying group.
	TotalMembers int
}

// CommonPatterns finds shapes shared by at least minSeries different
// series (the paper's "critical relationships between time series"),
// ranked by series coverage. minLen/maxLen zero means the indexed range;
// k caps the list (0 = default 16).
//
// Deprecated: use Analyze with Analysis{Kind: AnalysisCommonPatterns,
// MinSeries: minSeries, Lengths: Lengths{Min: minLen, Max: maxLen}, K: k}.
func (db *DB) CommonPatterns(minSeries, minLen, maxLen, k int) []CommonShape {
	// This method has always treated non-positive bounds as "the indexed
	// range"; Analysis spells that 0, so clamp before delegating.
	res, err := db.Analyze(context.Background(), Analysis{
		Kind:      AnalysisCommonPatterns,
		MinSeries: minSeries,
		Lengths:   Lengths{Min: max(minLen, 0), Max: max(maxLen, 0)},
		K:         k,
	})
	if err != nil {
		return nil
	}
	return res.Common
}

// ThresholdDistribution returns the per-point pairwise-ED sample, the
// probe length it was measured at, and the recommendations derived from
// it — everything a front end needs to draw the threshold histogram.
//
// Deprecated: use Analyze with Analysis{Kind: AnalysisThresholds}.
func (db *DB) ThresholdDistribution() ([]float64, int, []Recommendation, error) {
	res, err := db.Analyze(context.Background(), Analysis{Kind: AnalysisThresholds})
	if err != nil {
		return nil, 0, nil, err
	}
	t := res.Thresholds
	return t.Sample, t.ProbeLength, t.Recommendations, nil
}

// SweepPoint re-exports one threshold-sweep step.
type SweepPoint = core.SweepPoint

// SimilaritySweep counts matches at several thresholds in one pass (the
// paper's "changes in the similarity between sequences for varying
// parameters"). Query in original units; thresholds in normalized
// per-point units like Config.ST.
//
// Deprecated: use Analyze with Analysis{Kind: AnalysisSimilaritySweep,
// Values: q, Thresholds: thresholds}.
func (db *DB) SimilaritySweep(q []float64, thresholds []float64) ([]SweepPoint, error) {
	res, err := db.Analyze(context.Background(), Analysis{
		Kind:       AnalysisSimilaritySweep,
		Values:     q,
		Thresholds: thresholds,
	})
	if err != nil {
		return nil, err
	}
	return res.Sweep, nil
}

// Member is one group member in the drill-down view, in original units.
type Member struct {
	Series string
	Start  int
	Length int
	// RepED is the Euclidean distance to the group representative in
	// normalized units (bounded by ST*Length/2).
	RepED  float64
	Values []float64
}

// GroupMembers lists one similarity group's members (the demo's drill-down
// from the overview pane), nearest the representative first. Address the
// group by its Overview position: length and index.
//
// Deprecated: use Analyze with Analysis{Kind: AnalysisGroupMembers,
// Length: length, Index: index}.
func (db *DB) GroupMembers(length, index int) ([]Member, error) {
	res, err := db.Analyze(context.Background(), Analysis{
		Kind:   AnalysisGroupMembers,
		Length: length,
		Index:  index,
	})
	if err != nil {
		return nil, err
	}
	return res.Members, nil
}

// LengthSummary re-exports the per-length base statistics row.
type LengthSummary = core.LengthSummary

// LengthSummaries returns the base's per-length shape (group and
// subsequence counts), ascending by length.
//
// Deprecated: use Analyze with Analysis{Kind: AnalysisLengthSummaries}.
func (db *DB) LengthSummaries() []LengthSummary {
	res, err := db.Analyze(context.Background(), Analysis{Kind: AnalysisLengthSummaries})
	if err != nil {
		return nil
	}
	return res.LengthSummaries
}

// SaveBase persists the built ONEX base to a file (versioned binary format
// with CRC). Reopening with OpenWithBase skips the preprocessing cost.
func (db *DB) SaveBase(path string) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.base.SaveFile(path)
}

// OpenWithBase opens a dataset using a previously saved base instead of
// rebuilding. The base must have been built (by this library) from exactly
// this dataset with the same normalization setting; this is verified by
// checksum. cfg.ST, MinLength and MaxLength are taken from the base.
func OpenWithBase(d *ts.Dataset, basePath string, cfg Config) (*DB, error) {
	if d == nil {
		return nil, errors.New("onex: OpenWithBase: nil dataset")
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("onex: OpenWithBase: %w", err)
	}
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	raw := d.Clone()
	normed := d.Clone()
	if !cfg.KeepRaw {
		if err := ts.NormalizeMinMax(normed); err != nil {
			return nil, fmt.Errorf("onex: OpenWithBase: %w", err)
		}
	}
	base, err := grouping.LoadFile(basePath, normed)
	if err != nil {
		return nil, fmt.Errorf("onex: OpenWithBase: %w", err)
	}
	cfg.ST = base.ST
	cfg.MinLength = base.MinLength
	cfg.MaxLength = base.MaxLength
	if cfg.Band == 0 {
		cfg.Band = max(4, cfg.MaxLength/10)
	}
	engine, err := newEngine(normed, base, cfg)
	if err != nil {
		return nil, fmt.Errorf("onex: OpenWithBase: %w", err)
	}
	db := &DB{raw: raw, normed: normed, base: base, engine: engine, cfg: cfg, version: 1, id: lastDBID.Add(1), store: cfg.Store}
	if db.store != nil {
		applyFsyncEvery(db.store, cfg.FsyncEvery)
		// Same contract as Open: persist the opening state immediately so a
		// crash right after still warm-starts. On failure the engine is left
		// open for the caller to close.
		if err := db.store.Snapshot(db.stateLocked()); err != nil {
			return nil, fmt.Errorf("onex: OpenWithBase: initial snapshot: %w", err)
		}
	}
	return db, nil
}
