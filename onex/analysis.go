package onex

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/ts"
)

// AnalysisKind selects which exploration an Analysis runs.
type AnalysisKind string

// Analysis kinds. Each kind fills exactly one payload field of
// AnalysisResult.
const (
	// AnalysisOverview returns the top-K similarity groups of one length
	// (Length 0 auto-selects the most populated length) — the demo's
	// landing pane.
	AnalysisOverview AnalysisKind = "overview"
	// AnalysisGroupMembers drills into one group (addressed by Length +
	// Index, as reported by an overview), members nearest the
	// representative first.
	AnalysisGroupMembers AnalysisKind = "group-members"
	// AnalysisLengthSummaries returns the base's per-length shape (group
	// and subsequence counts), ascending by length.
	AnalysisLengthSummaries AnalysisKind = "length-summaries"
	// AnalysisSeasonal mines repeating patterns within Series (paper §3.3,
	// Fig 4), bounded by Lengths and MinOccurrences, capped at K.
	AnalysisSeasonal AnalysisKind = "seasonal"
	// AnalysisCommonPatterns mines shapes shared by at least MinSeries
	// different series, bounded by Lengths, capped at K.
	AnalysisCommonPatterns AnalysisKind = "common-patterns"
	// AnalysisSimilaritySweep counts matches of a query (Values or Window)
	// at several Thresholds in one certified range pass.
	AnalysisSimilaritySweep AnalysisKind = "similarity-sweep"
	// AnalysisThresholds returns the data-driven ST recommendations plus
	// the pairwise-distance sample they were derived from.
	AnalysisThresholds AnalysisKind = "threshold-recommend"
)

// Analysis is the single composable request type behind every exploration
// scenario — overview, drill-down, per-length stats, seasonal and common
// patterns, threshold sweeps and recommendations — executed by DB.Analyze.
// It is the analytics counterpart of Query: the zero value of every knob
// selects a documented default, only the fields relevant to Kind are
// consulted and validated (Mode and Band are shared knobs, resolved and
// echoed for every kind), and the executed request (defaults resolved) is
// echoed in AnalysisResult.Request.
type Analysis struct {
	// Kind selects the exploration; required.
	Kind AnalysisKind `json:"kind"`
	// Series names the series to mine (seasonal; required there).
	Series string `json:"series,omitempty"`
	// Window selects a window of a loaded series as the sweep query.
	// Mutually exclusive with Values.
	Window Window `json:"window,omitzero"`
	// Values is an ad-hoc sweep query in original units.
	Values []float64 `json:"values,omitempty"`
	// Length selects the group length (overview: 0 auto-selects;
	// group-members: required).
	Length int `json:"length,omitempty"`
	// Index addresses a group within its length (group-members).
	Index int `json:"index,omitempty"`
	// K caps the result list: top-K groups (overview, 0 = all) or maximum
	// patterns (seasonal / common-patterns, 0 = 16).
	K int `json:"k,omitempty"`
	// Lengths bounds the candidate subsequence lengths (seasonal,
	// common-patterns, similarity-sweep); zero means the indexed range.
	Lengths Lengths `json:"lengths,omitzero"`
	// MinOccurrences is the smallest recurrence count a seasonal pattern
	// must reach (0 = 2).
	MinOccurrences int `json:"min_occurrences,omitempty"`
	// MinSeries is the smallest number of distinct series a common pattern
	// must span (0 = 2).
	MinSeries int `json:"min_series,omitempty"`
	// Thresholds are the sweep's distance cut points (similarity-sweep;
	// required there), in the same normalized per-point units as Config.ST.
	Thresholds []float64 `json:"thresholds,omitempty"`
	// Mode overrides the DB's search mode for this call. Sweeps always run
	// the certified range scan and echo ModeExact, mirroring range queries.
	Mode QueryMode `json:"mode,omitempty"`
	// Band overrides the DB's Sakoe-Chiba width for this call (0 =
	// inherit, negative = unconstrained). Only sweeps run DTW.
	Band int `json:"band,omitempty"`
	// Workers bounds the worker pool this call may spread its group scans
	// across (0 = GOMAXPROCS; negative values are an AnalysisError). The
	// heavy walks — seasonal, common-patterns, similarity-sweep — shard
	// across it; the cheap kinds ignore it. Results are identical at every
	// setting. The HTTP server additionally caps the value per request.
	Workers int `json:"workers,omitempty"`
}

// AnalysisStats reports the work one Analyze call did, the analytics
// counterpart of QueryStats.
type AnalysisStats struct {
	// Groups is the number of similarity groups visited.
	Groups int `json:"groups"`
	// Candidates is the total membership of the visited groups (for
	// threshold-recommend: the number of sampled distances).
	Candidates int `json:"candidates"`
	// DTWs is the number of DTW dynamic programs started (only sweeps run
	// DTW; the mining kinds read the base without distance computation).
	DTWs int `json:"dtws"`
	// WallMicros is the end-to-end Analyze latency in microseconds.
	WallMicros int64 `json:"wall_micros"`
}

// ThresholdReport is the threshold-recommend payload: the recommendations
// plus the distribution they were derived from, everything a front end
// needs to draw the threshold histogram with its cut points.
type ThresholdReport struct {
	// Recommendations are the data-driven ST suggestions.
	Recommendations []Recommendation `json:"recommendations"`
	// Sample is the pairwise subsequence-ED sample (normalized per point,
	// sorted ascending) behind the recommendations.
	Sample []float64 `json:"sample"`
	// ProbeLength is the subsequence length the sample was measured at.
	ProbeLength int `json:"probe_length"`
}

// AnalysisResult is one Analyze call's outcome. Exactly one payload field
// is populated, selected by the request's Kind. Payload elements keep the
// legacy routes' wire format (Go field casing) while the envelope fields
// use lowercase JSON names, mirroring Result.
type AnalysisResult struct {
	// Groups is the overview payload.
	Groups []GroupInfo `json:"groups,omitempty"`
	// Members is the group-members payload.
	Members []Member `json:"members,omitempty"`
	// LengthSummaries is the length-summaries payload.
	LengthSummaries []LengthSummary `json:"lengths,omitempty"`
	// Patterns is the seasonal payload.
	Patterns []Pattern `json:"patterns,omitempty"`
	// Common is the common-patterns payload.
	Common []CommonShape `json:"common,omitempty"`
	// Sweep is the similarity-sweep payload.
	Sweep []SweepPoint `json:"sweep,omitempty"`
	// Thresholds is the threshold-recommend payload.
	Thresholds *ThresholdReport `json:"thresholds,omitempty"`
	// Request echoes the analysis with every default resolved (Length, K,
	// Lengths, MinOccurrences, MinSeries, Mode, Band, Workers), so callers
	// see exactly what was executed.
	Request Analysis `json:"request"`
	// Stats reports the walk's work and wall time.
	Stats AnalysisStats `json:"stats"`
}

// Analyze executes an Analysis: the unified, context-aware entry point
// behind every exploration scenario, the analytics counterpart of Find.
// Cancelling ctx aborts the walk between pruning rounds — checked per
// group and every 64 members, like Find — and returns ctx.Err().
//
// Invalid or contradictory requests are rejected with a *AnalysisError.
// Analyze is safe to call concurrently with queries and with AddSeries.
func (db *DB) Analyze(ctx context.Context, a Analysis) (AnalysisResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	db.mu.RLock()
	defer db.mu.RUnlock()
	if err := db.checkValuesLocked(); err != nil {
		return AnalysisResult{}, err
	}

	eff := a

	// Per-call mode and band default to the configuration the DB was
	// opened with, exactly as in Find.
	mode := core.ModeApprox
	if db.cfg.Exact {
		mode = core.ModeExact
	}
	switch a.Mode {
	case ModeDefault:
	case ModeApprox:
		mode = core.ModeApprox
	case ModeExact:
		mode = core.ModeExact
	default:
		return AnalysisResult{}, &AnalysisError{Kind: a.Kind, Field: "Mode", Value: a.Mode,
			Reason: fmt.Sprintf("want %q or %q (or empty for the DB default)", ModeApprox, ModeExact)}
	}
	if mode == core.ModeExact {
		eff.Mode = ModeExact
	} else {
		eff.Mode = ModeApprox
	}
	band := a.Band
	if band == 0 {
		band = db.cfg.Band
	}
	eff.Band = band

	// Per-call parallelism, validated like Config.Workers; the resolved
	// pool size is echoed so callers see what ran.
	if a.Workers < 0 {
		return AnalysisResult{}, &AnalysisError{Kind: a.Kind, Field: "Workers", Value: a.Workers,
			Reason: "must be non-negative (0 = GOMAXPROCS)"}
	}
	workers := a.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	eff.Workers = workers

	// Lengths is consulted by the mining and sweep kinds only; validate it
	// there and leave it untouched (zero) in the other kinds' echoes.
	validLengths := func() *AnalysisError {
		if a.Lengths.Min < 0 || a.Lengths.Max < 0 || (a.Lengths.Max > 0 && a.Lengths.Min > a.Lengths.Max) {
			return &AnalysisError{Kind: a.Kind, Field: "Lengths", Value: a.Lengths,
				Reason: "bounds must be non-negative with Min <= Max (zero = indexed range)"}
		}
		return nil
	}

	var (
		st  core.SearchStats
		res AnalysisResult
	)
	switch a.Kind {
	case AnalysisOverview:
		if a.Length < 0 {
			return AnalysisResult{}, &AnalysisError{Kind: a.Kind, Field: "Length", Value: a.Length,
				Reason: "must be non-negative (0 auto-selects the most populated length)"}
		}
		sums, err := db.engine.OverviewContext(ctx, a.Length, a.K, &st)
		if err != nil {
			return AnalysisResult{}, err
		}
		res.Groups = make([]GroupInfo, len(sums))
		for i, s := range sums {
			rep, _ := ts.DenormalizeValues(db.normed, 0, s.Rep)
			res.Groups[i] = GroupInfo{Length: s.Group.Length, Count: s.Count, Rep: rep}
		}
		if eff.Length == 0 && len(sums) > 0 {
			eff.Length = sums[0].Group.Length
		}

	case AnalysisGroupMembers:
		if a.Length <= 0 {
			return AnalysisResult{}, &AnalysisError{Kind: a.Kind, Field: "Length", Value: a.Length,
				Reason: "group length is required (as reported by an overview)"}
		}
		if a.Index < 0 {
			return AnalysisResult{}, &AnalysisError{Kind: a.Kind, Field: "Index", Value: a.Index,
				Reason: "group index must be non-negative"}
		}
		ms, err := db.engine.GroupMembersContext(ctx, core.GroupRef{Length: a.Length, Index: a.Index}, &st)
		if err != nil {
			return AnalysisResult{}, err
		}
		res.Members = make([]Member, len(ms))
		for i, m := range ms {
			vals, _ := ts.DenormalizeValues(db.normed, m.Ref.Series, m.Values)
			res.Members[i] = Member{
				Series: m.SeriesName,
				Start:  m.Ref.Start,
				Length: m.Ref.Length,
				RepED:  m.RepED,
				Values: vals,
			}
		}

	case AnalysisLengthSummaries:
		sums, err := db.engine.LengthSummariesContext(ctx, &st)
		if err != nil {
			return AnalysisResult{}, err
		}
		res.LengthSummaries = sums

	case AnalysisSeasonal:
		if a.Series == "" {
			return AnalysisResult{}, &AnalysisError{Kind: a.Kind, Field: "Series", Value: a.Series,
				Reason: "seasonal mining needs a series name"}
		}
		if err := validLengths(); err != nil {
			return AnalysisResult{}, err
		}
		eff.MinOccurrences = max(a.MinOccurrences, 2)
		if eff.K <= 0 {
			eff.K = 16
		}
		db.resolveLengths(&eff.Lengths)
		pats, err := db.engine.SeasonalContext(ctx, a.Series, core.SeasonalOptions{
			MinLength:      eff.Lengths.Min,
			MaxLength:      eff.Lengths.Max,
			MinOccurrences: eff.MinOccurrences,
			MaxPatterns:    eff.K,
			Dedup:          true, // suppress sub-window duplicates across lengths
			Workers:        workers,
		}, &st)
		if err != nil {
			return AnalysisResult{}, err
		}
		res.Patterns = make([]Pattern, len(pats))
		for i, p := range pats {
			starts := make([]int, len(p.Occurrences))
			for j, o := range p.Occurrences {
				starts[j] = o.Start
			}
			res.Patterns[i] = Pattern{
				Series:      a.Series,
				Length:      p.Length,
				Starts:      starts,
				MeanGap:     p.MeanGap,
				Occurrences: len(p.Occurrences),
			}
		}

	case AnalysisCommonPatterns:
		if err := validLengths(); err != nil {
			return AnalysisResult{}, err
		}
		eff.MinSeries = max(a.MinSeries, 2)
		if eff.K <= 0 {
			eff.K = 16
		}
		db.resolveLengths(&eff.Lengths)
		pats, err := db.engine.CommonPatternsContext(ctx, core.CommonOptions{
			MinSeries:   eff.MinSeries,
			MinLength:   eff.Lengths.Min,
			MaxLength:   eff.Lengths.Max,
			MaxPatterns: eff.K,
			Workers:     workers,
		}, &st)
		if err != nil {
			return AnalysisResult{}, err
		}
		res.Common = make([]CommonShape, len(pats))
		for i, p := range pats {
			names := make([]string, len(p.Occurrences))
			for j, o := range p.Occurrences {
				names[j] = db.raw.At(o.Series).Name
			}
			rep, _ := ts.DenormalizeValues(db.normed, 0, p.Rep)
			res.Common[i] = CommonShape{
				Length:       p.Length,
				Series:       names,
				Rep:          rep,
				TotalMembers: p.TotalMembers,
			}
		}

	case AnalysisSimilaritySweep:
		if err := validLengths(); err != nil {
			return AnalysisResult{}, err
		}
		if len(a.Thresholds) == 0 {
			return AnalysisResult{}, &AnalysisError{Kind: a.Kind, Field: "Thresholds", Value: a.Thresholds,
				Reason: "a sweep needs at least one threshold"}
		}
		for _, th := range a.Thresholds {
			if th < 0 || th != th {
				return AnalysisResult{}, &AnalysisError{Kind: a.Kind, Field: "Thresholds", Value: th,
					Reason: "thresholds must be non-negative"}
			}
		}
		qvec, err := db.analysisQuery(a)
		if err != nil {
			return AnalysisResult{}, err
		}
		db.resolveLengths(&eff.Lengths)
		eff.Mode = ModeExact // sweeps run the certified range scan
		pts, err := db.engine.SimilaritySweepContext(ctx, qvec, a.Thresholds,
			core.QueryConstraints{MinLength: eff.Lengths.Min, MaxLength: eff.Lengths.Max},
			core.Options{Band: band, Mode: mode, LengthNorm: true, Workers: workers}, &st)
		if err != nil {
			return AnalysisResult{}, err
		}
		res.Sweep = pts

	case AnalysisThresholds:
		dists, probe, err := core.SampleDistancesContext(ctx, db.normed, core.ThresholdOptions{})
		if err != nil {
			return AnalysisResult{}, err
		}
		recs, err := core.RecommendFromSampleContext(ctx, db.normed, dists, probe)
		if err != nil {
			return AnalysisResult{}, err
		}
		res.Thresholds = &ThresholdReport{Recommendations: recs, Sample: dists, ProbeLength: probe}
		st.Members = len(dists)

	default:
		return AnalysisResult{}, &AnalysisError{Kind: a.Kind, Field: "Kind", Value: a.Kind,
			Reason: "want overview, group-members, length-summaries, seasonal, common-patterns, similarity-sweep, or threshold-recommend"}
	}

	res.Request = eff
	res.Stats = AnalysisStats{
		Groups:     st.Groups,
		Candidates: st.Members,
		DTWs:       st.DTWs(),
		WallMicros: time.Since(start).Microseconds(),
	}
	return res, nil
}

// analysisQuery resolves a sweep's query vector (Values or Window, exactly
// one) into the engine's normalized space. Callers hold db.mu.
func (db *DB) analysisQuery(a Analysis) ([]float64, error) {
	haveWindow := !a.Window.isZero()
	switch {
	case len(a.Values) > 0 && haveWindow:
		return nil, &AnalysisError{Kind: a.Kind, Field: "Values", Value: a.Values,
			Reason: "provide Values or Window, not both"}
	case len(a.Values) > 0:
		return db.normalizeQuery(a.Values), nil
	case haveWindow:
		si := db.normed.IndexOf(a.Window.Series)
		if si < 0 {
			return nil, fmt.Errorf("onex: unknown series %q", a.Window.Series)
		}
		self := ts.SubSeq{Series: si, Start: a.Window.Start, Length: a.Window.Length}
		if err := self.Validate(db.normed); err != nil {
			return nil, fmt.Errorf("onex: Analyze: %w", err)
		}
		return self.Values(db.normed), nil
	default:
		return nil, &AnalysisError{Kind: a.Kind, Field: "Values", Value: a.Values,
			Reason: "a sweep needs a query: provide Values or a Window"}
	}
}

// resolveLengths fills zero length bounds with the indexed range, so the
// echoed request reports what actually ran. Callers hold db.mu.
func (db *DB) resolveLengths(l *Lengths) {
	if l.Min <= 0 {
		l.Min = db.base.MinLength
	}
	if l.Max <= 0 {
		l.Max = db.base.MaxLength
	}
}
