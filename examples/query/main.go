// Query: three exploratory scenarios through the one unified entry point.
//
// Everything the per-scenario methods used to do — top-k similarity, range
// exploration with a swept threshold, cross-series comparison — is one
// onex.Query with different fields set, executed by db.Find. The example
// also shows the two things Find adds over the legacy methods: the
// resolved ("effective") query echoed back, and per-call search
// statistics.
//
//	go run ./examples/query
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/onex"
)

func main() {
	// 50 states x 24 quarters of synthetic GDP growth.
	data := gen.Matters(gen.MattersOptions{Indicator: gen.GrowthRate})
	db, err := onex.Open(data, onex.Config{MinLength: 4, MaxLength: 12})
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("ONEX base ready: %d series, %d subsequences -> %d groups\n\n",
		st.Series, st.Subsequences, st.Groups)
	ctx := context.Background()

	// Scenario 1 — top-k: the five windows anywhere in the collection most
	// similar to MA's last year, excluding the query window itself.
	res, err := db.Find(ctx, onex.Query{
		Window:  onex.Window{Series: "MA", Start: 12, Length: 12},
		Exclude: onex.Exclude{Self: true},
		K:       5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-5 windows similar to MA[12:24):")
	for i, m := range res.Matches {
		fmt.Printf("  #%d %s[%d:%d)  DTW=%.4f\n", i+1, m.Series, m.Start, m.Start+m.Length, m.Dist)
	}
	fmt.Printf("  (searched %d groups, pruned %d, ran %d DTWs in %.2f ms)\n\n",
		res.Stats.Groups, res.Stats.GroupsPruned, res.Stats.DTWs,
		float64(res.Stats.WallMicros)/1000)

	// Scenario 2 — range sweep: how does the match population grow as the
	// distance budget loosens? Same Query, swept MaxDist.
	fmt.Println("range sweep around MA[12:24):")
	for _, maxDist := range []float64{0.02, 0.05, 0.1} {
		res, err := db.Find(ctx, onex.Query{
			Window:  onex.Window{Series: "MA", Start: 12, Length: 12},
			Exclude: onex.Exclude{Self: true},
			MaxDist: maxDist,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  within %.2f: %d matches\n", maxDist, len(res.Matches))
	}
	fmt.Println()

	// Scenario 3 — cross-series exclude: which states other than MA and
	// its neighbors trace the most similar trajectory? The exclusion set
	// is just another query field; here we also override the search mode
	// to certified-exact for this one call.
	res, err = db.Find(ctx, onex.Query{
		Window:  onex.Window{Series: "MA", Start: 0, Length: 12},
		Exclude: onex.Exclude{Series: []string{"MA", "CT", "RI"}},
		K:       3,
		Mode:    onex.ModeExact,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("states most like MA[0:12) (MA/CT/RI excluded, %s mode):\n", res.Query.Mode)
	for i, m := range res.Matches {
		fmt.Printf("  #%d %s[%d:%d)  DTW=%.4f\n", i+1, m.Series, m.Start, m.Start+m.Length, m.Dist)
	}
	fmt.Println()

	// Scenario 4 — progressive refinement: the same query as scenario 1,
	// but streamed. The first update is the approximate answer (available
	// before any exact refinement runs); each following update is one
	// certified wave; the last equals an exact-mode Find.
	x, err := db.Stream(ctx, onex.Query{
		Window:  onex.Window{Series: "MA", Start: 12, Length: 12},
		Exclude: onex.Exclude{Self: true},
		K:       5,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer x.Close()
	fmt.Println("progressive query for MA[12:24):")
	lastLine, waves := "", 0
	for u := range x.Updates() {
		waves = u.Wave
		certified := 0
		for _, c := range u.Certified {
			if c {
				certified++
			}
		}
		stage := fmt.Sprintf("wave %d", u.Wave)
		if u.Seq == 0 {
			stage = "approx"
		} else if u.Final {
			stage = "exact"
		}
		// A terminal UI would redraw in place; here we print only the
		// updates that change the picture (best match or certified count).
		best := "no match yet" // constrained walks can under-fill early snapshots
		if len(u.Matches) > 0 {
			best = fmt.Sprintf("best=%s[%d:%d) DTW=%.4f", u.Matches[0].Series,
				u.Matches[0].Start, u.Matches[0].Start+u.Matches[0].Length, u.Matches[0].Dist)
		}
		line := fmt.Sprintf("%s  certified %d/%d", best, certified, len(u.Matches))
		if line != lastLine || u.Final {
			fmt.Printf("  %-8s %s, %d groups left\n", stage, line, u.GroupsRemaining)
			lastLine = line
		}
	}
	if err := x.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  (%d refinement waves in total)\n", waves)
}
