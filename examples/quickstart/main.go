// Quickstart: the smallest end-to-end ONEX session (DESIGN.md F1).
//
// It generates a small economic dataset, opens an ONEX database (min-max
// normalization, data-driven threshold, base construction), runs the three
// exploratory operations the paper describes — best-match similarity,
// seasonal patterns, threshold recommendation — and prints the results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/onex"
)

func main() {
	// 1. Data: 50 states x 24 quarters of synthetic GDP growth (the
	//    MATTERS stand-in; see DESIGN.md §2 for the substitution note).
	data := gen.Matters(gen.MattersOptions{Indicator: gen.GrowthRate})

	// 2. Preprocess: normalize, pick a data-driven ST, build the base.
	// Economic trend exploration favors the looser recommendation — we
	// care about shape families, not near-duplicates (paper §3.3).
	recs, err := onex.RecommendForDataset(data)
	if err != nil {
		log.Fatal(err)
	}
	db, err := onex.Open(data, onex.Config{ST: recs[len(recs)-1].ST, MinLength: 4, MaxLength: 12})
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("ONEX base ready: %d series, %d subsequences -> %d groups (%.1fx compaction) in %d ms\n",
		st.Series, st.Subsequences, st.Groups, st.CompactionRatio, st.BuildMillis)
	fmt.Printf("similarity threshold (auto): %.4f normalized units\n\n", db.ST())

	// 3. Similarity: which state's recent growth trajectory most
	//    resembles Massachusetts'?
	m, err := db.BestMatchOtherSeries("MA", 12, 12) // the last 12 quarters
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("most similar to MA's last 12 quarters: %s[%d:%d) at DTW %.4f\n",
		m.Series, m.Start, m.Start+m.Length, m.Dist)
	fmt.Printf("matched values: %.2f ... %.2f (%d points, warping path %d steps)\n\n",
		m.Values[0], m.Values[len(m.Values)-1], len(m.Values), len(m.Path))

	// 4. Seasonal: does MA's growth repeat within itself?
	pats, err := db.Seasonal("MA", 4, 8, 2)
	if err != nil {
		log.Fatal(err)
	}
	if len(pats) == 0 {
		fmt.Println("no repeating pattern inside MA at lengths 4-8")
	} else {
		p := pats[0]
		fmt.Printf("repeating pattern in MA: length %d, %d occurrences, starts %v\n",
			p.Length, p.Occurrences, p.Starts)
	}
	fmt.Println()

	// 5. Threshold recommendation: what ST would suit this dataset?
	recs, err = db.RecommendThresholds()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("threshold recommendations (normalized units):")
	for _, r := range recs {
		fmt.Printf("  %-9s ST=%.4f  (~%d groups at probe length)\n", r.Label, r.ST, r.EstGroups)
	}
}
