// Thresholds walkthrough: the paper's §3.3 threshold-recommendation
// operation on two indicators with deliberately different unit scales.
//
// "The similarity in growth rate percentages may require very small
// thresholds, whereas similarity between unemployment figures is expressed
// in tens of thousands of people [and] uses higher thresholds." This
// example shows the data-driven recommendations tracking those scales, and
// what each choice means for the resulting ONEX base.
//
//	go run ./examples/thresholds    # also writes out/thresholds_*.svg
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/viz"
	"repro/onex"
)

func main() {
	if err := os.MkdirAll("out", 0o755); err != nil {
		log.Fatal(err)
	}
	for _, ind := range []gen.Indicator{gen.GrowthRate, gen.TechEmployment} {
		data := gen.Matters(gen.MattersOptions{Indicator: ind})
		unit := data.Series[0].Label("unit")
		fmt.Printf("== %s (unit: %s) ==\n", ind, unit)

		// Raw-unit recommendations: these differ across indicators by
		// orders of magnitude, which is the paper's point.
		recs, err := core.RecommendThresholds(data, core.ThresholdOptions{})
		if err != nil {
			log.Fatal(err)
		}

		// The distribution behind the recommendations, with the cut
		// points marked: the visual form of "data-driven".
		dists, probe, err := core.SampleDistances(data, core.ThresholdOptions{})
		if err != nil {
			log.Fatal(err)
		}
		markers := make([]viz.HistogramMarker, len(recs))
		for i, r := range recs {
			markers[i] = viz.HistogramMarker{Value: r.ST, Label: r.Label}
		}
		svg := viz.Histogram(
			fmt.Sprintf("%s — pairwise ED per point (probe length %d)", ind, probe),
			dists, 40, markers, 560, 240)
		path := filepath.Join("out", fmt.Sprintf("thresholds_%s.svg", ind))
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("  wrote", path)
		fmt.Println("  raw-unit recommendations:")
		for _, r := range recs {
			fmt.Printf("    %-9s ST=%-12.4f (~%d groups, %.1fx compaction at probe length)\n",
				r.Label, r.ST, r.EstGroups, r.EstCompaction)
		}

		// Opening with each recommendation shows the base-size trade-off
		// the analyst is navigating (normalized units inside the engine).
		db, err := onex.Open(data, onex.Config{MinLength: 4, MaxLength: 10})
		if err != nil {
			log.Fatal(err)
		}
		st := db.Stats()
		fmt.Printf("  auto-opened base: ST=%.4f -> %d groups, %.1fx compaction\n\n",
			db.ST(), st.Groups, st.CompactionRatio)
	}
}
