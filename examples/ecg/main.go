// ECG walkthrough: the "diverse domains" promise of the demo (§4) on a
// medical workload. Beat-to-beat timing jitter makes electrocardiograms
// exactly the misaligned data DTW was built for: we find which recording
// most resembles a reference recording's rhythm, sweep the similarity
// threshold, and render the warped alignment.
//
//	go run ./examples/ecg          # writes out/ecg_match.svg
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/ts"
	"repro/internal/viz"
	"repro/onex"
)

func main() {
	if err := os.MkdirAll("out", 0o755); err != nil {
		log.Fatal(err)
	}
	// Six recordings, half with arrhythmia.
	data := gen.ECG(gen.ECGOptions{Num: 6, Beats: 16, SamplesPerBeat: 24, Arrhythmic: true})
	db, err := onex.Open(data, onex.Config{MinLength: 24, MaxLength: 48, Band: 4})
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("ECG collection: %d recordings, %d subsequences -> %d groups (%.1fx) in %d ms\n",
		st.Series, st.Subsequences, st.Groups, st.CompactionRatio, st.BuildMillis)

	// Take two beats of the normal reference recording as the query.
	const ref = "ecg-00"
	m, err := db.BestMatchOtherSeries(ref, 0, 48)
	if err != nil {
		log.Fatal(err)
	}
	refClass := classOf(data, ref)
	matchClass := classOf(data, m.Series)
	fmt.Printf("query: two beats of %s (%s)\n", ref, refClass)
	fmt.Printf("best match: %s (%s) at [%d:%d), DTW %.4f\n",
		m.Series, matchClass, m.Start, m.Start+m.Length, m.Dist)

	// Threshold sweep: how the match population grows with tolerance.
	vals, err := db.SeriesValues(ref)
	if err != nil {
		log.Fatal(err)
	}
	q := vals[0:48]
	pts, err := db.SimilaritySweep(q, []float64{m.Dist, m.Dist * 2, m.Dist * 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matches within threshold:")
	for _, p := range pts {
		fmt.Printf("  <= %.4f : %d windows\n", p.MaxDist, p.Matches)
	}

	// Render the warped alignment.
	path := make(dist.WarpPath, len(m.Path))
	for i, p := range m.Path {
		path[i] = dist.PathStep{I: p[0], J: p[1]}
	}
	svg := viz.WarpChart(
		fmt.Sprintf("ECG rhythm match — %s vs %s (DTW %.4f)", ref, m.Series, m.Dist),
		viz.NamedSeries{Name: ref, Values: q},
		viz.NamedSeries{Name: m.Series, Values: m.Values},
		path, 720, 280)
	out := filepath.Join("out", "ecg_match.svg")
	if err := os.WriteFile(out, []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", out)
}

func classOf(d *ts.Dataset, name string) string {
	s, ok := d.ByName(name)
	if !ok {
		return "?"
	}
	return s.Label("class")
}
