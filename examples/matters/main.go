// Matters walkthrough: reproduces the demo paper's §4 economic-analytics
// session and regenerates Figures 2 and 3 as SVG files (DESIGN.md F2, F3).
//
// The session: load the MATTERS GrowthRate collection; view the overview
// pane of similarity-group representatives (color intensity = cardinality);
// select MA in the query pane; brush the second half of its series to
// focus on recent trends; run a similarity search; view the best match in
// the multiple-lines chart with dotted warped-point connections; then
// switch to the radial chart and connected scatter plot on the
// TechEmployment indicator (the paper's Fig 3 pair).
//
//	go run ./examples/matters        # writes out/fig2_*.svg, out/fig3_*.svg
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/viz"
	"repro/onex"
)

func main() {
	outDir := "out"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	// --- Load MATTERS GrowthRate; preprocessing builds the ONEX base.
	growth := gen.Matters(gen.MattersOptions{Indicator: gen.GrowthRate})
	db, err := onex.Open(growth, onex.Config{MinLength: 4, MaxLength: 12})
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("GrowthRate loaded: %d subsequences -> %d groups (%.1fx)\n",
		st.Subsequences, st.Groups, st.CompactionRatio)

	// --- Fig 2, overview pane: group representatives, tint = cardinality.
	groups := db.Overview(12, 12)
	cells := make([]viz.OverviewCell, len(groups))
	for i, g := range groups {
		cells[i] = viz.OverviewCell{Rep: g.Rep, Count: g.Count,
			Label: fmt.Sprintf("n=%d", g.Count)}
	}
	write(outDir, "fig2_overview.svg",
		viz.OverviewGrid("Overview pane — GrowthRate similarity groups (len 12)", cells, 4, 120, 72))

	// --- Fig 2, query selection pane: MA with its 6-year line graph, plus
	//     the scrollable state list as the demo's stacked-lines view.
	maVals, err := db.SeriesValues("MA")
	if err != nil {
		log.Fatal(err)
	}
	write(outDir, "fig2_query_selection.svg",
		viz.LineChart("Query selection — MA growth rate", []viz.NamedSeries{
			{Name: "MA", Values: maVals},
		}, 480, 200))
	var stacked []viz.NamedSeries
	for _, name := range []string{"MA", "CT", "RI", "NH", "VT", "ME"} {
		vals, err := db.SeriesValues(name)
		if err != nil {
			log.Fatal(err)
		}
		stacked = append(stacked, viz.NamedSeries{Name: name, Values: vals})
	}
	write(outDir, "fig2_state_list.svg",
		viz.StackedLineChart("Query selection — New England growth rates", stacked, 480, 44))

	// --- Fig 2, query preview: brush the second half (recent trends).
	brushStart := len(maVals) / 2
	brushed := maVals[brushStart:]
	write(outDir, "fig2_query_preview.svg",
		viz.LineChart(fmt.Sprintf("Query preview — MA brushed [%d:%d)", brushStart, len(maVals)),
			[]viz.NamedSeries{{Name: "MA (brushed)", Values: brushed}}, 480, 200))

	// --- Fig 2, results pane: best match with warped-point connections.
	m, err := db.BestMatchOtherSeries("MA", brushStart, len(brushed))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best match for MA's recent trend: %s[%d:%d) at DTW %.4f\n",
		m.Series, m.Start, m.Start+m.Length, m.Dist)
	path := make(dist.WarpPath, len(m.Path))
	for i, p := range m.Path {
		path[i] = dist.PathStep{I: p[0], J: p[1]}
	}
	write(outDir, "fig2_results.svg",
		viz.WarpChart(fmt.Sprintf("Results — MA vs %s (DTW %.4f)", m.Series, m.Dist),
			viz.NamedSeries{Name: "MA", Values: brushed},
			viz.NamedSeries{Name: m.Series, Values: m.Values},
			path, 640, 280))

	// --- Fig 3: Tech employment, radial + connected scatter for MA and
	//     its best-matching state (the paper shows MA vs AR).
	tech := gen.Matters(gen.MattersOptions{Indicator: gen.TechEmployment})
	techDB, err := onex.Open(tech, onex.Config{MinLength: 6, MaxLength: 12})
	if err != nil {
		log.Fatal(err)
	}
	tm, err := techDB.BestMatchOtherSeries("MA", 0, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tech employment pair: MA vs %s (DTW %.4f)\n", tm.Series, tm.Dist)
	maTech, _ := techDB.SeriesValues("MA")
	otherTech, _ := techDB.SeriesValues(tm.Series)
	write(outDir, "fig3_radial.svg",
		viz.RadialChart("Tech employment — radial",
			viz.NamedSeries{Name: "MA", Values: maTech},
			viz.NamedSeries{Name: tm.Series, Values: otherTech}, 360))
	write(outDir, "fig3_scatter.svg",
		viz.ConnectedScatter("Tech employment — connected scatter",
			viz.NamedSeries{Name: "MA", Values: maTech},
			viz.NamedSeries{Name: tm.Series, Values: otherTech}, nil, 360))

	fmt.Println("figures written to", outDir)
}

func write(dir, name, svg string) {
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  wrote", path)
}
