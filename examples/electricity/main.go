// Electricity walkthrough: reproduces the demo paper's §4 power-usage
// session and regenerates Figure 4 as an SVG (DESIGN.md F4).
//
// The session: load a household's year of electricity consumption, run a
// seasonal similarity query at the daily window length, and render the
// seasonal view — the full series in grey with the recurring pattern's
// occurrences overdrawn in alternating blue and green.
//
//	go run ./examples/electricity    # writes out/fig4_seasonal.svg
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/gen"
	"repro/internal/viz"
	"repro/onex"
)

func main() {
	outDir := "out"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	// A year of household consumption at 12 samples/day: long enough for
	// seasonal structure, small enough for an interactive build.
	const samplesPerDay = 12
	data := gen.ElectricityLoad(gen.ElectricityOptions{
		Households:    3,
		Days:          120,
		SamplesPerDay: samplesPerDay,
	})
	db, err := onex.Open(data, onex.Config{
		MinLength: samplesPerDay,
		MaxLength: 2 * samplesPerDay,
		Band:      2,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("ElectricityLoad loaded: %d subsequences -> %d groups (%.1fx) in %d ms\n",
		st.Subsequences, st.Groups, st.CompactionRatio, st.BuildMillis)

	const household = "household-00"
	pats, err := db.Seasonal(household, samplesPerDay, samplesPerDay, 4)
	if err != nil {
		log.Fatal(err)
	}
	if len(pats) == 0 {
		log.Fatal("no repeating pattern found — unexpected for daily-cycle data")
	}
	fmt.Printf("top patterns in %s:\n", household)
	for i, p := range pats {
		if i >= 3 {
			break
		}
		fmt.Printf("  #%d length=%d occurrences=%d mean_gap=%.1f samples (%.2f days)\n",
			i+1, p.Length, p.Occurrences, p.MeanGap, p.MeanGap/samplesPerDay)
	}

	best := pats[0]
	vals, err := db.SeriesValues(household)
	if err != nil {
		log.Fatal(err)
	}
	segs := make([]viz.SeasonalSegment, 0, len(best.Starts))
	for _, s := range best.Starts {
		segs = append(segs, viz.SeasonalSegment{Start: s, Length: best.Length})
	}
	svg := viz.SeasonalView(
		fmt.Sprintf("Seasonal view — %s: %d occurrences of a %d-sample pattern (gap %.1f days)",
			household, best.Occurrences, best.Length, best.MeanGap/samplesPerDay),
		vals, segs, 900, 280)
	path := filepath.Join(outDir, "fig4_seasonal.svg")
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", path)
}
