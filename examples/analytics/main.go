// Analytics: the exploration scenarios through the one unified entry
// point.
//
// Everything the per-scenario methods used to do — group overview,
// drill-down, per-length stats, seasonal and cross-series pattern mining,
// threshold sweeps and recommendations — is one onex.Analysis with
// different fields set, executed by db.Analyze. Like Find, Analyze echoes
// the resolved request and reports per-call walk statistics, and a
// cancelled context aborts the walk mid-mine.
//
//	go run ./examples/analytics
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/onex"
)

func main() {
	// 3 households x 60 days of synthetic electricity load, 12 samples per
	// day, so daily habits recur every 12 points.
	data := gen.ElectricityLoad(gen.ElectricityOptions{Households: 3, Days: 60, SamplesPerDay: 12})
	db, err := onex.Open(data, onex.Config{MinLength: 6, MaxLength: 14})
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("ONEX base ready: %d series, %d subsequences -> %d groups\n\n",
		st.Series, st.Subsequences, st.Groups)
	ctx := context.Background()

	// Scenario 1 — overview: the data's dominant shapes. Length 0
	// auto-selects the most populated length; the resolved request reports
	// which one that was.
	res, err := db.Analyze(ctx, onex.Analysis{Kind: onex.AnalysisOverview, K: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top groups at auto-selected length %d:\n", res.Request.Length)
	for i, g := range res.Groups {
		fmt.Printf("  #%d count=%d\n", i+1, g.Count)
	}
	fmt.Printf("  (visited %d groups / %d members in %.2f ms)\n\n",
		res.Stats.Groups, res.Stats.Candidates, float64(res.Stats.WallMicros)/1000)

	// Scenario 2 — drill-down: the members of the biggest group, nearest
	// the representative first. Same request type, different Kind.
	res, err = db.Analyze(ctx, onex.Analysis{
		Kind:   onex.AnalysisGroupMembers,
		Length: res.Request.Length,
		Index:  0,
	})
	if err != nil {
		log.Fatal(err)
	}
	show := min(len(res.Members), 3)
	fmt.Printf("group drill-down (%d members, first %d):\n", len(res.Members), show)
	for _, m := range res.Members[:show] {
		fmt.Printf("  %s[%d:%d)  repED=%.4f\n", m.Series, m.Start, m.Start+m.Length, m.RepED)
	}
	fmt.Println()

	// Scenario 3 — seasonal mining: does household-00 repeat a daily
	// shape? Bound the motif length to one day.
	res, err = db.Analyze(ctx, onex.Analysis{
		Kind:           onex.AnalysisSeasonal,
		Series:         "household-00",
		Lengths:        onex.Lengths{Min: 12, Max: 12},
		MinOccurrences: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seasonal patterns in household-00 (length 12):\n")
	for i, p := range res.Patterns {
		if i >= 2 {
			break
		}
		fmt.Printf("  #%d occurrences=%d mean_gap=%.1f (planted period is 12)\n",
			i+1, p.Occurrences, p.MeanGap)
	}
	fmt.Println()

	// Scenario 4 — cross-series patterns: shapes all three households
	// share (everyone's evening peak looks alike).
	res, err = db.Analyze(ctx, onex.Analysis{Kind: onex.AnalysisCommonPatterns, MinSeries: 3, K: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shapes shared by all %d households: %d\n\n", data.Len(), len(res.Common))

	// Scenario 5 — threshold sweep: how fast does the match population
	// around one morning grow as the distance budget loosens? One
	// certified range pass answers every threshold at once.
	res, err = db.Analyze(ctx, onex.Analysis{
		Kind:       onex.AnalysisSimilaritySweep,
		Window:     onex.Window{Series: "household-00", Start: 0, Length: 12},
		Thresholds: []float64{0.02, 0.05, 0.1, 0.2},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("match population vs distance budget (one pass):")
	for _, p := range res.Sweep {
		fmt.Printf("  within %.2f: %d matches\n", p.MaxDist, p.Matches)
	}
	fmt.Printf("  (%d DTWs for the whole sweep)\n\n", res.Stats.DTWs)

	// Scenario 6 — threshold recommendation: the data-driven ST menu plus
	// the distance sample behind it, ready for a histogram.
	res, err = db.Analyze(ctx, onex.Analysis{Kind: onex.AnalysisThresholds})
	if err != nil {
		log.Fatal(err)
	}
	t := res.Thresholds
	fmt.Printf("threshold menu (from %d sampled pairs at probe length %d):\n",
		len(t.Sample), t.ProbeLength)
	for _, r := range t.Recommendations {
		fmt.Printf("  %-9s ST=%.4f\n", r.Label, r.ST)
	}
}
