// Command onexvet is ONEX's project-specific static analysis suite: a
// vet-style multichecker that mechanically enforces the repo's
// concurrency, persistence, and determinism invariants (the contracts
// CHANGES.md and docs/ARCHITECTURE.md establish in prose).
//
// Usage:
//
//	go run ./cmd/onexvet [-json] [packages]
//
// With no package patterns it checks ./.... Exit status is 0 when clean,
// 3 when diagnostics were reported (matching x/tools' multichecker), and
// 1 on load or usage errors. -json emits the x/tools multichecker JSON
// layout on stdout for tooling to consume.
//
// The analyzers and their annotation escape hatches:
//
//	ctxloop     //onex:nopoll     group/member walks must poll ctx
//	atomicwrite //onex:rawfs      persistence writes go through fsutil
//	lockorder   //onex:locksafe   no same-receiver lock re-entry
//	keyinject   //onex:keyok      cache-key canonicalizers stay injective
//	detpath     //onex:wallclock, //onex:detorder
//	                              scoring paths stay deterministic
//
// Every annotation requires a reason; see docs/ARCHITECTURE.md's
// "Invariants & static analysis" section.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
	"repro/internal/lint/atomicwrite"
	"repro/internal/lint/ctxloop"
	"repro/internal/lint/detpath"
	"repro/internal/lint/keyinject"
	"repro/internal/lint/lockorder"
)

// analyzers is the onexvet suite, in reporting order.
var analyzers = []*lint.Analyzer{
	atomicwrite.Analyzer,
	ctxloop.Analyzer,
	detpath.Analyzer,
	keyinject.Analyzer,
	lockorder.Analyzer,
}

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON (x/tools multichecker layout)")
	list := flag.Bool("analyzers", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: onexvet [-json] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "ONEX invariant checker; packages default to ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "onexvet:", err)
		os.Exit(1)
	}
	res, err := lint.Run(wd, analyzers, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "onexvet:", err)
		os.Exit(1)
	}
	if *jsonOut {
		if err := res.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "onexvet:", err)
			os.Exit(1)
		}
	} else if err := res.WriteText(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "onexvet:", err)
		os.Exit(1)
	}
	if len(res.Diagnostics) > 0 {
		os.Exit(3)
	}
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
