package main

import (
	"testing"
)

func TestOpenSourceGenerators(t *testing.T) {
	for _, source := range []string{"matters:GrowthRate", "electricity", "cbf", "walks", "ecg"} {
		db, err := openSource(source, nil, 1)
		if err != nil {
			t.Fatalf("openSource(%s): %v", source, err)
		}
		st := db.Stats()
		if st.Series == 0 || st.Groups == 0 {
			t.Fatalf("openSource(%s) built an empty base: %+v", source, st)
		}
	}
}

func TestOpenSourceErrors(t *testing.T) {
	for _, source := range []string{"bogus", "matters:Nope", "file:/does/not/exist.csv"} {
		if _, err := openSource(source, nil, 1); err == nil {
			t.Fatalf("openSource(%s) accepted", source)
		}
	}
}
