// Command onexd serves the ONEX HTTP API and demo page (paper §4's
// client-server architecture).
//
// Usage:
//
//	onexd -addr :8080
//	onexd -addr :8080 -preload growth=matters:GrowthRate,power=electricity
//	onexd -addr :8080 -data-dir /srv/onex/data
//	onexd -addr :8080 -max-workers 2
//
// Preloaded sources accept the same syntax as POST /api/datasets/load:
// "matters:<Indicator>", "electricity", "cbf", "walks", "file:<path>".
// GET /healthz answers liveness probes (build info + loaded-dataset
// count) for load balancers in front of the daemon, and
// POST /api/v1/datasets/{name}/query/stream serves progressive queries
// as NDJSON (the stream handler re-arms the write deadline per update,
// so the server's WriteTimeout below bounds per-update stalls, not total
// stream duration).
// -data-dir restricts the load endpoint's file: sources to one directory;
// without it any server-readable path may be loaded (the historical demo
// behaviour, fine when operator == analyst). -max-workers caps the worker
// pool any single query or analyze request may claim, so one client cannot
// monopolize the box (default: GOMAXPROCS).
//
// The serving tier for heavy traffic is opt-in per knob:
//
//	onexd -cache-bytes 67108864          # 64 MiB versioned result cache
//	onexd -rate-limit 50 -rate-burst 100 # per-client token bucket (429 + Retry-After)
//	onexd -max-inflight 8 -inflight-queue 32  # admission control (503 + Retry-After)
//
// -cache-bytes enables the result cache for /query and /analyze, keyed by
// (dataset, DB instance ID, dataset version, canonical request) so both
// ingests and dataset reloads invalidate by construction.
// -rate-limit/-rate-burst and -max-inflight/-inflight-queue shed excess
// query-class traffic before it reaches the engine; rate limiting keys
// clients by remote IP unless -trust-proxy asserts that a fronting proxy
// sets X-Forwarded-For (never pass it when clients connect directly —
// the header is client-forgeable). GET /metrics exports request counters,
// latency histograms, cache hit/miss/eviction counts, the inflight gauge,
// and rejection counts in Prometheus text format regardless of which
// knobs are on.
//
// Persistence is opt-in with -store:
//
//	onexd -store /srv/onex/store -preload growth=matters:GrowthRate
//	onexd -store /srv/onex/store -fsync-every 32
//
// Every dataset then lives under /srv/onex/store/<name> as a CRC-checksummed
// snapshot plus a write-ahead log: loads snapshot immediately, ingests are
// fsynced to the WAL before they are acknowledged, and startup warm-restores
// everything persisted (preloads whose name was restored skip their rebuild —
// the store copy, ingests included, wins). Graceful shutdown folds each WAL
// into a fresh snapshot so the next start replays nothing. GET /healthz
// gains a per-dataset persistence block and GET /metrics the onex_store_*
// families when -store is active. -fsync-every N turns on WAL group commit:
// one fsync per N ingests instead of per ingest, trading up to N-1 of the
// most recently acknowledged ingests on a crash (always a clean suffix) for
// ingest throughput.
//
// Replication turns a second onexd into a serving read replica:
//
//	onexd -addr :8081 -follow http://leader:8080
//
// The follower enumerates the leader's datasets, ships each one's snapshot,
// and tails its WAL over /replication/v1, serving every read endpoint from
// the replicated copies while rejecting writes with 503 plus an
// X-Onex-Leader header naming the leader. GET /healthz gains a per-dataset
// replication block (applied/leader seq, lag, reconnects) and GET /metrics
// the onex_replica_* families. -follow excludes -store and -preload: a
// replica's state is the leader's, shipped, not built or persisted locally.
//
// -mmap serves datasets beyond RAM. With -store, warm restores map each
// snapshot read-only and serve series values as zero-copy views that page
// in on demand instead of decoding them onto the heap; with -follow,
// shipped snapshots are spooled to disk and mapped the same way. GET
// /healthz reports each mapped dataset's mapped and resident bytes and
// GET /metrics grows the onex_mmap_* families. Datasets loaded cold (via
// -preload or POST /datasets/load) still build in memory; they serve
// mapped after the next restart's warm restore.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/store"
	"repro/onex"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	preload := flag.String("preload", "", "comma-separated name=source pairs to load at startup")
	dataDir := flag.String("data-dir", "", "restrict file: load sources to this directory (default: unrestricted)")
	maxWorkers := flag.Int("max-workers", 0, "per-request cap on query/analyze worker pools (0 = GOMAXPROCS)")
	cacheBytes := flag.Int64("cache-bytes", 0, "result-cache byte budget for query/analyze responses (0 = caching off)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client query-class requests per second (0 = rate limiting off)")
	rateBurst := flag.Int("rate-burst", 0, "per-client token-bucket burst (default: ceil of -rate-limit)")
	trustProxy := flag.Bool("trust-proxy", false, "rate-limit on the first X-Forwarded-For hop (only behind a proxy that strips client-supplied values)")
	maxInflight := flag.Int("max-inflight", 0, "concurrent query-class execution slots (0 = admission control off)")
	inflightQueue := flag.Int("inflight-queue", 0, "requests allowed to wait for a slot before 503 (with -max-inflight)")
	storeDir := flag.String("store", "", "persist datasets under this directory (snapshot + WAL per dataset; warm-restores at startup)")
	fsyncEvery := flag.Int("fsync-every", 1, "with -store: fsync the WAL once per N ingests (group commit; N>1 risks the last N-1 acked ingests on a crash)")
	follow := flag.String("follow", "", "run as a serving read replica of the leader at this base URL (excludes -store and -preload)")
	mmap := flag.Bool("mmap", false, "serve dataset values as zero-copy views over memory-mapped snapshots (with -store: warm restores; with -follow: shipped snapshots are spooled to disk and mapped)")
	flag.Parse()

	if *follow != "" && (*storeDir != "" || *preload != "") {
		log.Fatal("onexd: -follow excludes -store and -preload (a replica's state is shipped from the leader)")
	}
	if *mmap && *storeDir == "" && *follow == "" {
		log.Fatal("onexd: -mmap needs a snapshot to map; pair it with -store (warm restores) or -follow (spooled bootstrap snapshots)")
	}

	var opts []server.Option
	if *storeDir != "" {
		opts = append(opts, server.WithStore(*storeDir))
		if *mmap {
			opts = append(opts, server.WithMmap())
		}
	}
	if *dataDir != "" {
		opts = append(opts, server.WithDataDir(*dataDir))
	}
	if *maxWorkers > 0 {
		opts = append(opts, server.WithMaxWorkers(*maxWorkers))
	}
	if *cacheBytes > 0 {
		opts = append(opts, server.WithCache(*cacheBytes))
	}
	if *rateLimit > 0 {
		burst := *rateBurst
		if burst <= 0 {
			burst = int(math.Ceil(*rateLimit))
		}
		opts = append(opts, server.WithRateLimit(*rateLimit, burst))
	}
	if *trustProxy {
		opts = append(opts, server.WithTrustedProxy())
	}
	if *maxInflight > 0 {
		opts = append(opts, server.WithMaxInflight(*maxInflight, *inflightQueue))
	}
	if *fsyncEvery > 1 {
		opts = append(opts, server.WithFsyncEvery(*fsyncEvery))
	}

	// Follower mode: enumerate the leader's datasets, then run one
	// replication loop per dataset. OnDB swaps each freshly bootstrapped
	// replica into the serving map, so reads always hit a complete DB —
	// first at initial-snapshot time, again after every compaction fence.
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	var srv *server.Server
	var followers map[string]*replica.Follower
	if *follow != "" {
		names, err := leaderDatasets(*follow)
		if err != nil {
			log.Fatalf("onexd: -follow %s: %v", *follow, err)
		}
		if len(names) == 0 {
			log.Printf("onexd: leader %s has no datasets; serving empty (restart the follower after loading the leader)", *follow)
		}
		opts = append(opts, server.WithLeader(*follow))
		spoolDir := ""
		if *mmap {
			// Shipped snapshots are spooled here and mapped instead of
			// being decoded onto the heap; the directory lives for the
			// process (mappings reference its files).
			spoolDir, err = os.MkdirTemp("", "onexd-replica-spool-")
			if err != nil {
				log.Fatalf("onexd: -mmap spool dir: %v", err)
			}
			defer os.RemoveAll(spoolDir)
		}
		followers = make(map[string]*replica.Follower, len(names))
		for _, name := range names {
			followers[name] = replica.New(*follow, name, replica.Options{
				Workers:  *maxWorkers,
				SpoolDir: spoolDir,
				Logf:     log.Printf,
				OnDB:     func(db *onex.DB) { srv.AddDB(name, db) },
			})
		}
		opts = append(opts, server.WithReplicaStatus(func() map[string]replica.Status {
			out := make(map[string]replica.Status, len(followers))
			for n, f := range followers {
				out[n] = f.Status()
			}
			return out
		}))
	}
	srv = server.New(opts...)
	for name, f := range followers {
		go func() {
			if err := f.Run(ctx); err != nil && ctx.Err() == nil {
				log.Printf("onexd: follower %s stopped: %v", name, err)
			}
		}()
	}
	warm := make(map[string]bool)
	if *storeDir != "" {
		restored, err := srv.RestoreStored()
		if err != nil {
			log.Fatalf("onexd: restore from %s: %v", *storeDir, err)
		}
		for _, name := range restored {
			warm[name] = true
			log.Printf("restored %s from store (warm open, no rebuild)", name)
		}
	}
	if *preload != "" {
		for _, pair := range strings.Split(*preload, ",") {
			name, source, ok := strings.Cut(pair, "=")
			if !ok {
				log.Fatalf("onexd: bad -preload entry %q (want name=source)", pair)
			}
			if warm[name] {
				// The store already holds this dataset, ingests included;
				// rebuilding from the source would discard them.
				log.Printf("preload %s: already restored from store, skipping rebuild", name)
				continue
			}
			var eng *store.FileStore
			if *storeDir != "" {
				var err error
				if eng, err = store.Open(filepath.Join(*storeDir, name)); err != nil {
					log.Fatalf("onexd: preload %s: store: %v", name, err)
				}
			}
			db, err := openSource(source, eng, *fsyncEvery)
			if err != nil {
				log.Fatalf("onexd: preload %s: %v", name, err)
			}
			srv.AddDB(name, db)
			st := db.Stats()
			log.Printf("loaded %s from %s: %d series, %d subsequences, %d groups (%.1fx compaction)",
				name, source, st.Series, st.Subsequences, st.Groups, st.CompactionRatio)
		}
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      120 * time.Second, // preprocessing large loads takes time
		IdleTimeout:       60 * time.Second,
	}
	// Graceful shutdown on SIGINT/SIGTERM: in-flight queries finish.
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("onexd shutting down")
		stop() // wind down follower replication loops
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpServer.Shutdown(sctx)
	}()
	log.Printf("onexd listening on %s", *addr)
	if err := httpServer.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	if *storeDir != "" {
		// Graceful shutdown: fold every WAL into a fresh snapshot so the
		// next start is a pure warm open with nothing to replay.
		if err := srv.PersistAll(); err != nil {
			log.Printf("onexd: shutdown snapshot: %v", err)
		}
		srv.CloseStores()
	}
}

// leaderDatasets enumerates the datasets served by the leader, retrying
// briefly so a follower started alongside its leader (compose files, CI)
// wins the startup race instead of dying on the first connection refusal.
func leaderDatasets(base string) ([]string, error) {
	base = strings.TrimRight(base, "/")
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		if attempt > 0 {
			time.Sleep(500 * time.Millisecond)
		}
		resp, err := http.Get(base + "/api/v1/datasets")
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			lastErr = fmt.Errorf("leader answered %s", resp.Status)
			continue
		}
		var infos []struct {
			Name string `json:"name"`
		}
		err = json.NewDecoder(resp.Body).Decode(&infos)
		resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("dataset listing: %w", err)
			continue
		}
		names := make([]string, 0, len(infos))
		for _, info := range infos {
			names = append(names, info.Name)
		}
		return names, nil
	}
	return nil, fmt.Errorf("leader unreachable: %w", lastErr)
}

// openSource mirrors the server's load endpoint for startup preloads,
// keeping defaults suitable for interactive demo sizes. A non-nil engine
// makes the dataset durable (Open writes the initial snapshot).
func openSource(source string, eng *store.FileStore, fsyncEvery int) (*onex.DB, error) {
	ds, err := server.DatasetForSource(source)
	if err != nil {
		return nil, err
	}
	maxLen := ds.MaxLen()
	if maxLen > 48 {
		maxLen = 48 // keep preload preprocessing interactive
	}
	cfg := onex.Config{MaxLength: maxLen, FsyncEvery: fsyncEvery}
	if eng != nil {
		cfg.Store = eng
	}
	db, err := onex.Open(ds, cfg)
	if err != nil {
		if eng != nil {
			eng.Close()
		}
		return nil, fmt.Errorf("preprocess: %w", err)
	}
	return db, nil
}
