// Command onexd serves the ONEX HTTP API and demo page (paper §4's
// client-server architecture).
//
// Usage:
//
//	onexd -addr :8080
//	onexd -addr :8080 -preload growth=matters:GrowthRate,power=electricity
//	onexd -addr :8080 -data-dir /srv/onex/data
//	onexd -addr :8080 -max-workers 2
//
// Preloaded sources accept the same syntax as POST /api/datasets/load:
// "matters:<Indicator>", "electricity", "cbf", "walks", "file:<path>".
// GET /healthz answers liveness probes (build info + loaded-dataset
// count) for load balancers in front of the daemon, and
// POST /api/v1/datasets/{name}/query/stream serves progressive queries
// as NDJSON (the stream handler re-arms the write deadline per update,
// so the server's WriteTimeout below bounds per-update stalls, not total
// stream duration).
// -data-dir restricts the load endpoint's file: sources to one directory;
// without it any server-readable path may be loaded (the historical demo
// behaviour, fine when operator == analyst). -max-workers caps the worker
// pool any single query or analyze request may claim, so one client cannot
// monopolize the box (default: GOMAXPROCS).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/onex"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	preload := flag.String("preload", "", "comma-separated name=source pairs to load at startup")
	dataDir := flag.String("data-dir", "", "restrict file: load sources to this directory (default: unrestricted)")
	maxWorkers := flag.Int("max-workers", 0, "per-request cap on query/analyze worker pools (0 = GOMAXPROCS)")
	flag.Parse()

	var opts []server.Option
	if *dataDir != "" {
		opts = append(opts, server.WithDataDir(*dataDir))
	}
	if *maxWorkers > 0 {
		opts = append(opts, server.WithMaxWorkers(*maxWorkers))
	}
	srv := server.New(opts...)
	if *preload != "" {
		for _, pair := range strings.Split(*preload, ",") {
			name, source, ok := strings.Cut(pair, "=")
			if !ok {
				log.Fatalf("onexd: bad -preload entry %q (want name=source)", pair)
			}
			db, err := openSource(source)
			if err != nil {
				log.Fatalf("onexd: preload %s: %v", name, err)
			}
			srv.AddDB(name, db)
			st := db.Stats()
			log.Printf("loaded %s from %s: %d series, %d subsequences, %d groups (%.1fx compaction)",
				name, source, st.Series, st.Subsequences, st.Groups, st.CompactionRatio)
		}
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      120 * time.Second, // preprocessing large loads takes time
		IdleTimeout:       60 * time.Second,
	}
	// Graceful shutdown on SIGINT/SIGTERM: in-flight queries finish.
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("onexd shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpServer.Shutdown(ctx)
	}()
	log.Printf("onexd listening on %s", *addr)
	if err := httpServer.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}

// openSource mirrors the server's load endpoint for startup preloads,
// keeping defaults suitable for interactive demo sizes.
func openSource(source string) (*onex.DB, error) {
	ds, err := server.DatasetForSource(source)
	if err != nil {
		return nil, err
	}
	maxLen := ds.MaxLen()
	if maxLen > 48 {
		maxLen = 48 // keep preload preprocessing interactive
	}
	db, err := onex.Open(ds, onex.Config{MaxLength: maxLen})
	if err != nil {
		return nil, fmt.Errorf("preprocess: %w", err)
	}
	return db, nil
}
