// Command onexbench regenerates the reproduction's experiment tables
// (DESIGN.md §4, EXPERIMENTS.md). Each experiment prints an aligned text
// table to stdout.
//
// Usage:
//
//	onexbench -exp all            # every experiment, paper-scale configs
//	onexbench -exp e1             # latency: ONEX vs UCR-Suite vs brute force
//	onexbench -exp e2             # accuracy: ONEX vs embedding baseline
//	onexbench -exp e3             # base construction cost and compaction
//	onexbench -exp e4             # threshold recommendation
//	onexbench -exp e5             # seasonal-query recall
//	onexbench -exp e6             # certified transfer bound check
//	onexbench -exp ablations      # A1 repair, A2 band sweep, A3 LB cascade
//	onexbench -exp e1 -quick      # reduced sizes for a fast smoke run
//	onexbench -exp e1 -mode exact -workers 4   # certified search on a 4-worker pool
//	onexbench -exp e1 -mode stream             # progressive pipeline; first_us column reports first-update latency
//
// The E1 latency experiment runs the ONEX side through the public API —
// onex.Query executed by DB.Find, or DB.Stream when -mode stream — so the
// numbers measure the path real clients use. -mode selects approx (the
// paper's configuration, the default), exact, or stream; -workers bounds
// the per-query worker pool (0 = all cores, 1 = the serial engine).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: e1..e6 or all")
	quick := flag.Bool("quick", false, "use reduced sizes for a fast smoke run")
	mode := flag.String("mode", "", "E1 query path: approx (default) | exact | stream")
	workers := flag.Int("workers", 0, "E1 per-query worker pool (0 = all cores, 1 = serial)")
	flag.Parse()

	which := strings.ToLower(*exp)
	run := func(name string) bool { return which == "all" || which == name }
	failed := false

	if run("e1") {
		cfg := bench.DefaultE1()
		if *quick {
			cfg.SeriesCounts = []int{10, 25}
			cfg.Queries = 5
		}
		cfg.Mode = *mode
		cfg.Workers = *workers
		onexPath := cfg.Mode
		if onexPath == "" {
			onexPath = "approx"
		}
		fmt.Printf("== E1: best-match latency — ONEX (%s) vs UCR-Suite-style exact vs naive DTW scan ==\n", onexPath)
		fmt.Printf("   series length %d, query length %d, band %d, %d queries per row, workers %d (0 = all cores)\n\n",
			cfg.SeriesLen, cfg.QueryLen, cfg.Band, cfg.Queries, cfg.Workers)
		rows, err := bench.RunE1(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "E1:", err)
			failed = true
		} else {
			fmt.Println(bench.TableE1(rows))
		}
	}
	if run("e2") {
		cfg := bench.DefaultE2()
		if *quick {
			cfg.Queries = 5
		}
		fmt.Println("== E2: match accuracy vs exact DTW — ONEX (approx) vs embedding filter-and-refine ==")
		fmt.Printf("   query length %d, band %d, %d queries per dataset, equalized refine budgets\n\n",
			cfg.QueryLen, cfg.Band, cfg.Queries)
		rows, err := bench.RunE2(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "E2:", err)
			failed = true
		} else {
			fmt.Println(bench.TableE2(rows))
		}
	}
	if run("e3") {
		cfg := bench.DefaultE3()
		if *quick {
			cfg.SeriesCounts = []int{10, 25}
		}
		fmt.Println("== E3: ONEX base construction — scaling with collection size ==")
		rows, err := bench.RunE3Sizes(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "E3 sizes:", err)
			failed = true
		} else {
			fmt.Println(bench.TableE3(rows))
		}
		fmt.Println("== E3b: ONEX base construction — scaling with similarity threshold ==")
		rows2, err := bench.RunE3Thresholds(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "E3 thresholds:", err)
			failed = true
		} else {
			fmt.Println(bench.TableE3(rows2))
		}
	}
	if run("e4") {
		fmt.Println("== E4: data-driven threshold recommendation — raw units per indicator ==")
		rows, err := bench.RunE4(0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "E4:", err)
			failed = true
		} else {
			fmt.Println(bench.TableE4(rows))
		}
		fmt.Println("== E4b: the same after min-max normalization (engine units) ==")
		rows2, err := bench.RunE4Normalized(0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "E4b:", err)
			failed = true
		} else {
			fmt.Println(bench.TableE4(rows2))
		}
	}
	if run("e5") {
		cfg := bench.DefaultE5()
		if *quick {
			cfg.DaysSweep = []int{10, 20}
		}
		fmt.Println("== E5: seasonal-query recall of the planted daily cycle (ElectricityLoad) ==")
		rows, err := bench.RunE5(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "E5:", err)
			failed = true
		} else {
			fmt.Println(bench.TableE5(rows))
		}
	}
	if run("e6") {
		cfg := bench.DefaultE6()
		if *quick {
			cfg.Queries = 6
		}
		fmt.Println("== E6: certified ED->DTW transfer bound — empirical soundness and tightness ==")
		row, err := bench.RunE6(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "E6:", err)
			failed = true
		} else {
			fmt.Println(bench.TableE6(row))
		}
	}
	if run("e7") {
		cfg := bench.DefaultE7()
		if *quick {
			cfg.TrainPerClass, cfg.TestPerClass = 6, 4
		}
		fmt.Println("== E7: 1-NN classification — ONEX retrieval vs exact DTW retrieval ==")
		rows, err := bench.RunE7(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "E7:", err)
			failed = true
		} else {
			fmt.Println(bench.TableE7(rows))
		}
	}
	if run("a1") || which == "ablations" {
		fmt.Println("== A1: repair-pass ablation — invariant enforcement cost and effect ==")
		rows, err := bench.RunA1(0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "A1:", err)
			failed = true
		} else {
			fmt.Println(bench.TableA1(rows))
		}
	}
	if run("a2") || which == "ablations" {
		fmt.Println("== A2: Sakoe-Chiba band sweep — latency/accuracy trade-off ==")
		rows, err := bench.RunA2(0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "A2:", err)
			failed = true
		} else {
			fmt.Println(bench.TableA2(rows))
		}
	}
	if run("a3") || which == "ablations" {
		fmt.Println("== A3: lower-bound cascade — per-stage pruning fractions ==")
		rows, err := bench.RunA3(0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "A3:", err)
			failed = true
		} else {
			fmt.Println(bench.TableA3(rows))
		}
	}
	if failed {
		os.Exit(1)
	}
}
