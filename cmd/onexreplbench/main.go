// Command onexreplbench measures and exercises the replication subsystem:
// it runs a leader (real FileStore + HTTP endpoints, in-process) and a
// follower, and reports how fast a replica comes up and stays caught up.
//
//	onexreplbench -series 24 -len 256 -ingest 200 -out BENCH_replica.json
//	onexreplbench -check            # also run the convergence scenarios
//
// Two numbers matter operationally and both are reported:
//
//   - snapshot ship time: cold-follower time from first byte to a serving
//     DB (bootstrap = download + decode + engine rebind), and
//   - WAL apply rate: records/second a streaming follower sustains while
//     the leader ingests.
//
// -check additionally runs the failure scenarios the design guarantees:
// a follower killed mid-stream and restarted converges to the leader's
// exact version, and a leader compaction behind a live follower fences it
// into a clean snapshot re-ship (never a torn or gapped stream). Each
// scenario asserts convergence (follower version == leader version) and
// exits non-zero on violation, so CI can run it as a smoke test.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"repro/internal/gen"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/store"
	"repro/onex"
)

// report is the benchmark output written to -out (and stdout).
type report struct {
	Config struct {
		Series  int `json:"series"`
		Length  int `json:"length"`
		Ingests int `json:"ingests"`
	} `json:"config"`
	// SnapshotShipMillis is the cold-bootstrap time: snapshot download,
	// decode, and engine rebind, until the follower serves queries.
	SnapshotShipMillis float64 `json:"snapshot_ship_millis"`
	// SnapshotBytes is the size of the shipped snapshot.
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// WALApplyPerSec is the streaming apply rate: ingests replicated per
	// second while the leader writes (includes long-poll latency).
	WALApplyPerSec float64 `json:"wal_apply_per_sec"`
	// CatchupMillis is the total time from first ingest to the follower
	// having applied all of them.
	CatchupMillis float64 `json:"catchup_millis"`
	// Checks lists the -check scenario outcomes ("pass"), empty without
	// -check.
	Checks map[string]string `json:"checks,omitempty"`
}

func main() {
	series := flag.Int("series", 24, "series in the leader dataset")
	length := flag.Int("len", 256, "points per series")
	ingests := flag.Int("ingest", 200, "series ingested while the follower streams")
	check := flag.Bool("check", false, "also run the kill/restart and compaction-fence convergence scenarios")
	out := flag.String("out", "BENCH_replica.json", "report path (empty = stdout only)")
	flag.Parse()

	var rep report
	rep.Config.Series = *series
	rep.Config.Length = *length
	rep.Config.Ingests = *ingests

	dir, err := os.MkdirTemp("", "onexreplbench")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Leader: a store-backed DB behind the real HTTP surface.
	leaderDB := openLeader(filepath.Join(dir, "leader"), *series, *length)
	srv := server.New()
	srv.AddDB("bench", leaderDB)
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Cold bootstrap: time to a serving follower.
	f := replica.New(hts.URL, "bench", replica.Options{PollWait: time.Second})
	start := time.Now()
	go func() { _ = f.Run(ctx) }()
	if err := f.WaitCaughtUp(ctx, leaderDB.Version()); err != nil {
		log.Fatalf("bootstrap never converged: %v", err)
	}
	rep.SnapshotShipMillis = float64(time.Since(start).Microseconds()) / 1000
	if st, ok := leaderDB.StoreStatus(); ok {
		rep.SnapshotBytes = st.SnapshotBytes
	}

	// Streaming apply rate: ingest under the follower's feet, then wait
	// for convergence.
	walks := gen.RandomWalks(gen.WalkOptions{Num: *ingests, Length: *length, Seed: 7})
	start = time.Now()
	for _, s := range walks.Series {
		if err := leaderDB.AddSeries("live-"+s.Name, s.Values); err != nil {
			log.Fatalf("leader ingest: %v", err)
		}
	}
	target := leaderDB.Version()
	if err := f.WaitCaughtUp(ctx, target); err != nil {
		log.Fatalf("stream never converged: %v", err)
	}
	elapsed := time.Since(start)
	rep.CatchupMillis = float64(elapsed.Microseconds()) / 1000
	rep.WALApplyPerSec = float64(*ingests) / elapsed.Seconds()
	if got := f.DB().Version(); got != target {
		log.Fatalf("converged follower at version %d, leader at %d", got, target)
	}
	cancel()

	if *check {
		rep.Checks = map[string]string{}
		runCheck(rep.Checks, "kill_restart_converges", checkKillRestart)
		runCheck(rep.Checks, "compaction_fence_reships", checkCompactionFence)
	}

	body, _ := json.MarshalIndent(rep, "", "  ")
	body = append(body, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, body, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	os.Stdout.Write(body)
}

// runCheck executes one convergence scenario, recording "pass" or dying
// with the failure (non-zero exit for CI).
func runCheck(results map[string]string, name string, fn func() error) {
	if err := fn(); err != nil {
		log.Fatalf("check %s: %v", name, err)
	}
	results[name] = "pass"
	log.Printf("check %s: pass", name)
}

// openLeader builds a store-backed leader DB over a deterministic dataset.
func openLeader(dir string, series, length int) *onex.DB {
	eng, err := store.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	ds := gen.RandomWalks(gen.WalkOptions{Num: series, Length: length, Seed: 3})
	db, err := onex.Open(ds, onex.Config{Store: eng, MaxLength: 24})
	if err != nil {
		log.Fatal(err)
	}
	return db
}

// checkKillRestart kills a follower mid-stream (context cancel, state
// dropped) and verifies a fresh follower converges to the leader's exact
// version afterwards — the crash-and-replace operational path.
func checkKillRestart() error {
	dir, err := os.MkdirTemp("", "onexreplcheck")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	leaderDB := openLeader(filepath.Join(dir, "leader"), 8, 128)
	srv := server.New()
	srv.AddDB("chk", leaderDB)
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	walks := gen.RandomWalks(gen.WalkOptions{Num: 40, Length: 128, Seed: 11})

	// First follower: killed partway through the ingest stream.
	fctx, kill := context.WithCancel(ctx)
	defer kill()
	f1 := replica.New(hts.URL, "chk", replica.Options{PollWait: 500 * time.Millisecond})
	go func() { _ = f1.Run(fctx) }()
	for i, s := range walks.Series[:20] {
		if err := leaderDB.AddSeries("w-"+s.Name, s.Values); err != nil {
			return err
		}
		if i == 10 {
			kill() // mid-stream: records keep landing on the leader after this
		}
	}
	// Remaining ingests land while no follower is running.
	for _, s := range walks.Series[20:] {
		if err := leaderDB.AddSeries("w-"+s.Name, s.Values); err != nil {
			return err
		}
	}

	// Restarted follower (fresh state, as after a crash) must converge.
	f2 := replica.New(hts.URL, "chk", replica.Options{PollWait: 500 * time.Millisecond})
	go func() { _ = f2.Run(ctx) }()
	if err := f2.WaitCaughtUp(ctx, leaderDB.Version()); err != nil {
		return fmt.Errorf("restarted follower never converged: %w", err)
	}
	if got, want := f2.DB().Version(), leaderDB.Version(); got != want {
		return fmt.Errorf("restarted follower at version %d, leader at %d", got, want)
	}
	return nil
}

// checkCompactionFence compacts the leader behind a live follower's cursor
// and verifies the follower re-ships the snapshot (fence path) and still
// converges — the WAL tail it was reading was folded away underneath it.
func checkCompactionFence() error {
	dir, err := os.MkdirTemp("", "onexreplfence")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	leaderDB := openLeader(filepath.Join(dir, "leader"), 8, 128)
	srv := server.New()
	srv.AddDB("chk", leaderDB)
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	f := replica.New(hts.URL, "chk", replica.Options{PollWait: 500 * time.Millisecond})
	go func() { _ = f.Run(ctx) }()
	if err := f.WaitCaughtUp(ctx, leaderDB.Version()); err != nil {
		return fmt.Errorf("bootstrap: %w", err)
	}

	// Ingest + compact repeatedly: each Snapshot() folds the WAL, so a
	// follower that has not yet polled the new records is behind the
	// compaction boundary and must be fenced into a snapshot re-ship.
	walks := gen.RandomWalks(gen.WalkOptions{Num: 12, Length: 128, Seed: 19})
	for _, s := range walks.Series {
		if err := leaderDB.AddSeries("c-"+s.Name, s.Values); err != nil {
			return err
		}
		if err := leaderDB.Snapshot(); err != nil {
			return err
		}
	}
	if err := f.WaitCaughtUp(ctx, leaderDB.Version()); err != nil {
		return fmt.Errorf("fenced follower never converged: %w", err)
	}
	if got, want := f.DB().Version(), leaderDB.Version(); got != want {
		return fmt.Errorf("fenced follower at version %d, leader at %d", got, want)
	}
	if st := f.Status(); st.SnapshotsShipped < 2 {
		return fmt.Errorf("expected at least one fence-triggered re-ship, got %d total ships", st.SnapshotsShipped)
	}
	return nil
}
