package main

import (
	"errors"
	"math/rand"
	"net/http"
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	var sorted []time.Duration
	for i := 1; i <= 100; i++ {
		sorted = append(sorted, time.Duration(i)*time.Millisecond)
	}
	for _, tc := range []struct {
		p    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1.00, 100 * time.Millisecond},
	} {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Errorf("percentile(p=%g) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
}

func TestNormalizeWall(t *testing.T) {
	in := `{"stats":{"wall_micros":12345,"dtws":7},"more":{"wall_micros":9}}`
	want := `{"stats":{"wall_micros":0,"dtws":7},"more":{"wall_micros":0}}`
	if got := string(normalizeWall([]byte(in))); got != want {
		t.Errorf("normalizeWall = %s", got)
	}
	// Equal answers with different timings compare equal after normalizing.
	a := `{"matches":[],"stats":{"wall_micros":100}}`
	b := `{"matches":[],"stats":{"wall_micros":999}}`
	if string(normalizeWall([]byte(a))) != string(normalizeWall([]byte(b))) {
		t.Error("same answer with different wall times not normalized equal")
	}
}

func TestLabelValue(t *testing.T) {
	for _, tc := range []struct {
		sample, label, want string
		ok                  bool
	}{
		{`onex_rejected_total{reason="overload"}`, "reason", "overload", true},
		{`m{a="1",reason="rate_limit"}`, "reason", "rate_limit", true},
		{`m{a="1"}`, "reason", "", false},
	} {
		got, ok := labelValue(tc.sample, tc.label)
		if got != tc.want || ok != tc.ok {
			t.Errorf("labelValue(%q, %q) = %q, %v; want %q, %v", tc.sample, tc.label, got, ok, tc.want, tc.ok)
		}
	}
}

func TestStatusErr(t *testing.T) {
	if err := statusErr(http.StatusOK); err != nil {
		t.Errorf("200 -> %v", err)
	}
	for _, code := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		if err := statusErr(code); !errors.Is(err, errRejected) {
			t.Errorf("%d -> %v, want errRejected", code, err)
		}
	}
	if err := statusErr(http.StatusBadRequest); err == nil || errors.Is(err, errRejected) {
		t.Errorf("400 -> %v, want plain error", err)
	}
}

func TestPerturbShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := []float64{1, -2, 3}
	out := perturb(in, 0.1, rng)
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if d := out[i] - in[i]; d < -0.3 || d > 0.3 {
			t.Errorf("element %d perturbed by %g, beyond amp*span", i, d)
		}
	}
	// amp 0 is the identity.
	same := perturb(in, 0, rng)
	for i := range in {
		if same[i] != in[i] {
			t.Errorf("amp=0 changed element %d", i)
		}
	}
}
