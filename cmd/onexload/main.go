// Command onexload is the serving-tier load harness: it drives many
// concurrent clients against an onexd-compatible server — mixing unified
// queries, analytics, progressive streams, and live ingest — and writes a
// BENCH_serving.json perf-trajectory artifact (latency percentiles,
// throughput, cache hit rate, rejections, stale-read violations).
//
// By default it self-hosts an in-process server (no network setup, the CI
// smoke path); -addr points it at a live daemon instead.
//
//	onexload                                   # self-host, defaults
//	onexload -clients 16 -duration 10s -out BENCH_serving.json
//	onexload -addr http://127.0.0.1:8080 -name growth
//	onexload -check                            # exit 1 on zero hit rate or any stale read
//
// The run has three measured segments:
//
//	cold   every request is a never-seen query: pure miss path
//	hot    requests repeat a small query pool: the repeated-query segment
//	       the result cache turns from O(scan) into O(lookup)
//	mixed  queries, analytics, streams, and ingest interleaved
//
// Stale-read detection is exact-mode monotonicity: ingested series can
// only improve the certified best distance of the fixed probe query, so a
// client that ever observes the probe distance increase between its own
// consecutive responses has been served a result from before an ingest it
// already saw — exactly the staleness the versioned cache keying is
// designed to make impossible. A final sweep additionally replays the hot
// pool with Cache-Control: no-cache and compares cached vs fresh bytes
// (wall-time fields normalized).
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/onex"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "", "target server base URL (empty = self-host an in-process server)")
	flag.StringVar(&cfg.name, "name", "bench", "dataset name on the server")
	flag.StringVar(&cfg.source, "dataset", "cbf", "dataset source for self-hosting (matters:<Ind>, electricity, cbf, walks, ecg, file:<path>)")
	flag.IntVar(&cfg.clients, "clients", 8, "concurrent client goroutines")
	flag.DurationVar(&cfg.duration, "duration", 5*time.Second, "wall time per measured segment")
	flag.IntVar(&cfg.pool, "pool", 16, "distinct queries in the repeated-query (hot) pool")
	flag.Int64Var(&cfg.cacheBytes, "cache-bytes", 64<<20, "self-hosted server result-cache budget (0 = cache off)")
	flag.Float64Var(&cfg.rateLimit, "rate-limit", 0, "self-hosted server per-client rate limit (0 = off)")
	flag.IntVar(&cfg.maxInflight, "max-inflight", 0, "self-hosted server admission slots (0 = off)")
	flag.IntVar(&cfg.inflightQueue, "inflight-queue", 0, "self-hosted server admission queue")
	flag.IntVar(&cfg.minLength, "min-length", 4, "self-hosted indexing min length")
	flag.IntVar(&cfg.maxLength, "max-length", 32, "self-hosted indexing max length")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload RNG seed")
	flag.StringVar(&cfg.out, "out", "BENCH_serving.json", "report path (empty = stdout only)")
	flag.BoolVar(&cfg.check, "check", false, "exit 1 unless the cache hit rate is nonzero and no stale read was observed")
	flag.Parse()

	rep, err := run(cfg)
	if err != nil {
		log.Fatalf("onexload: %v", err)
	}
	out, _ := json.MarshalIndent(rep, "", "  ")
	out = append(out, '\n')
	if cfg.out != "" {
		if err := os.WriteFile(cfg.out, out, 0o644); err != nil {
			log.Fatalf("onexload: write report: %v", err)
		}
	}
	os.Stdout.Write(out)
	fmt.Fprintf(os.Stderr, "onexload: hot/cold p50 speedup %.1fx, hit rate %.1f%%, %d stale reads\n",
		rep.HotVsColdP50Speedup, 100*rep.Cache.HitRate, rep.StaleReadErrors)
	if cfg.check {
		if rep.Cache.Hits == 0 {
			log.Fatal("onexload: -check: cache hit count is zero")
		}
		if rep.StaleReadErrors > 0 {
			log.Fatalf("onexload: -check: %d stale reads observed", rep.StaleReadErrors)
		}
		if rep.ConsistencyMismatches > 0 {
			log.Fatalf("onexload: -check: %d cached-vs-fresh mismatches", rep.ConsistencyMismatches)
		}
	}
}

type config struct {
	addr, name, source         string
	clients, pool              int
	duration                   time.Duration
	cacheBytes                 int64
	rateLimit                  float64
	maxInflight, inflightQueue int
	minLength, maxLength       int
	seed                       int64
	out                        string
	check                      bool
}

// Report is the BENCH_serving.json schema: the repo's serving-tier perf
// trajectory, one artifact per commit that touches the serving path.
type Report struct {
	GeneratedAt string              `json:"generated_at"`
	Config      ReportConfig        `json:"config"`
	Segments    map[string]*Segment `json:"segments"`
	Cache       CacheReport         `json:"cache"`
	Rejected    map[string]int64    `json:"rejected"`
	// StaleReadErrors counts exact-mode monotonicity violations: any
	// nonzero value means a pre-ingest answer was served post-ingest.
	StaleReadErrors int64 `json:"stale_read_errors"`
	// ConsistencyMismatches counts hot-pool responses whose cached bytes
	// differ from a fresh no-cache recomputation (wall-time normalized).
	ConsistencyMismatches int64   `json:"consistency_mismatches"`
	HotVsColdP50Speedup   float64 `json:"hot_vs_cold_p50_speedup"`
}

type ReportConfig struct {
	Target     string        `json:"target"` // "self-hosted" or the -addr URL
	Dataset    string        `json:"dataset"`
	Clients    int           `json:"clients"`
	Duration   time.Duration `json:"segment_duration_ns"`
	Pool       int           `json:"pool"`
	CacheBytes int64         `json:"cache_bytes"`
	Seed       int64         `json:"seed"`
}

// Segment aggregates one measured workload phase.
type Segment struct {
	Requests  int64            `json:"requests"`
	Errors    int64            `json:"errors"`
	Rejected  int64            `json:"rejected"` // 429/503 responses
	P50Micros int64            `json:"p50_us"`
	P95Micros int64            `json:"p95_us"`
	P99Micros int64            `json:"p99_us"`
	QPS       float64          `json:"qps"`
	Ops       map[string]int64 `json:"ops,omitempty"`
}

type CacheReport struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

func run(cfg config) (*Report, error) {
	base := cfg.addr
	if base == "" {
		stop, selfBase, err := selfHost(cfg)
		if err != nil {
			return nil, err
		}
		defer stop()
		base = selfBase
	}
	base = strings.TrimRight(base, "/")
	w, err := newWorkload(cfg, base)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Config: ReportConfig{
			Target: targetLabel(cfg), Dataset: cfg.source, Clients: cfg.clients,
			Duration: cfg.duration, Pool: cfg.pool, CacheBytes: cfg.cacheBytes, Seed: cfg.seed,
		},
		Segments: make(map[string]*Segment),
		Rejected: make(map[string]int64),
	}

	log.Printf("onexload: cold segment (%s, %d clients, unique queries)", cfg.duration, cfg.clients)
	rep.Segments["cold"] = w.runSegment(cfg, func(c *clientState) (string, error) { return w.uniqueQuery(c) })
	log.Printf("onexload: hot segment (%s, %d clients, %d-query pool)", cfg.duration, cfg.clients, cfg.pool)
	rep.Segments["hot"] = w.runSegment(cfg, func(c *clientState) (string, error) { return w.poolQuery(c) })
	log.Printf("onexload: mixed segment (%s, queries + analytics + streams + ingest)", cfg.duration)
	rep.Segments["mixed"] = w.runSegment(cfg, w.mixedOp)

	rep.StaleReadErrors = w.staleReads.Load()
	rep.ConsistencyMismatches = w.verifyHotPool()

	if err := w.scrapeMetrics(rep); err != nil {
		return nil, fmt.Errorf("scrape /metrics: %w", err)
	}
	if p50c, p50h := rep.Segments["cold"].P50Micros, rep.Segments["hot"].P50Micros; p50h > 0 {
		rep.HotVsColdP50Speedup = float64(p50c) / float64(p50h)
	}
	return rep, nil
}

func targetLabel(cfg config) string {
	if cfg.addr == "" {
		return "self-hosted"
	}
	return cfg.addr
}

// selfHost opens the dataset, builds a serving-tier server, and listens on
// a loopback port.
func selfHost(cfg config) (stop func(), base string, err error) {
	ds, err := server.DatasetForSource(cfg.source)
	if err != nil {
		return nil, "", err
	}
	db, err := onex.Open(ds, onex.Config{MinLength: cfg.minLength, MaxLength: cfg.maxLength})
	if err != nil {
		return nil, "", fmt.Errorf("preprocess %s: %w", cfg.source, err)
	}
	opts := []server.Option{server.WithCache(cfg.cacheBytes)}
	if cfg.rateLimit > 0 {
		opts = append(opts, server.WithRateLimit(cfg.rateLimit, int(math.Ceil(cfg.rateLimit))))
	}
	if cfg.maxInflight > 0 {
		opts = append(opts, server.WithMaxInflight(cfg.maxInflight, cfg.inflightQueue))
	}
	srv := server.New(opts...)
	srv.AddDB(cfg.name, db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	st := db.Stats()
	log.Printf("onexload: self-hosting %s on %s: %d series, %d subsequences, %d groups",
		cfg.source, ln.Addr(), st.Series, st.Subsequences, st.Groups)
	return func() { _ = hs.Close() }, "http://" + ln.Addr().String(), nil
}

// workload holds the generated request material and shared counters.
type workload struct {
	base   string
	name   string
	client *http.Client

	probe        []float64 // the stale-oracle query vector
	queryPool    [][]byte  // hot-segment bodies (pre-marshaled onex.Query)
	analysisPool [][]byte
	seriesVals   []float64 // base material for unique queries
	ingestSeq    atomic.Int64
	staleReads   atomic.Int64
	rng          *rand.Rand // only for pool construction; clients get their own
	seed         int64
}

// clientState is one client goroutine's private state.
type clientState struct {
	id        int
	rng       *rand.Rand
	probeBest float64 // last certified probe distance this client observed
	hasBest   bool
}

func newWorkload(cfg config, base string) (*workload, error) {
	w := &workload{
		base:   base,
		name:   cfg.name,
		client: &http.Client{Timeout: 60 * time.Second},
		rng:    rand.New(rand.NewSource(cfg.seed)),
		seed:   cfg.seed,
	}
	// Pull a real series to derive query vectors in original units.
	var names []string
	if err := w.getJSON("/api/v1/datasets/"+cfg.name+"/series", &names); err != nil {
		return nil, fmt.Errorf("list series (is dataset %q loaded?): %w", cfg.name, err)
	}
	if len(names) == 0 {
		return nil, errors.New("dataset has no series")
	}
	var sv struct {
		Values []float64 `json:"values"`
	}
	if err := w.getJSON("/api/v1/datasets/"+cfg.name+"/series/"+names[0], &sv); err != nil {
		return nil, err
	}
	if len(sv.Values) < 16 {
		return nil, fmt.Errorf("series %q too short (%d points) for the workload", names[0], len(sv.Values))
	}
	w.seriesVals = sv.Values
	w.probe = perturb(sv.Values[:12], 0.05, w.rng)

	for range cfg.pool {
		q := onex.Query{Values: perturb(w.window(w.rng), 0.02, w.rng), K: 3}
		body, _ := json.Marshal(q)
		w.queryPool = append(w.queryPool, body)
	}
	for _, a := range []onex.Analysis{
		{Kind: onex.AnalysisOverview, K: 8},
		{Kind: onex.AnalysisLengthSummaries},
		{Kind: onex.AnalysisSeasonal, Series: names[0]},
		{Kind: onex.AnalysisCommonPatterns},
	} {
		body, _ := json.Marshal(a)
		w.analysisPool = append(w.analysisPool, body)
	}
	return w, nil
}

// window cuts a random query window out of the base series.
func (w *workload) window(rng *rand.Rand) []float64 {
	l := 8 + rng.Intn(8)
	start := rng.Intn(len(w.seriesVals) - l)
	return w.seriesVals[start : start+l]
}

func perturb(vals []float64, amp float64, rng *rand.Rand) []float64 {
	out := make([]float64, len(vals))
	span := 0.0
	for _, v := range vals {
		span = math.Max(span, math.Abs(v))
	}
	for i, v := range vals {
		out[i] = v + amp*span*(rng.Float64()*2-1)
	}
	return out
}

// runSegment drives cfg.clients goroutines of op for cfg.duration and
// aggregates latencies and counts.
func (w *workload) runSegment(cfg config, op func(*clientState) (string, error)) *Segment {
	var (
		mu        sync.Mutex
		latencies []time.Duration
		seg       = &Segment{Ops: make(map[string]int64)}
	)
	deadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	for i := range cfg.clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &clientState{id: i, rng: rand.New(rand.NewSource(w.seed + int64(i)*7919))}
			var local []time.Duration
			localOps := make(map[string]int64)
			for time.Now().Before(deadline) {
				start := time.Now()
				kind, err := op(c)
				local = append(local, time.Since(start))
				localOps[kind]++
				mu.Lock()
				seg.Requests++
				switch {
				case errors.Is(err, errRejected):
					seg.Rejected++
				case err != nil:
					seg.Errors++
				}
				mu.Unlock()
			}
			mu.Lock()
			latencies = append(latencies, local...)
			for k, v := range localOps {
				seg.Ops[k] += v
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	seg.P50Micros = percentile(latencies, 0.50).Microseconds()
	seg.P95Micros = percentile(latencies, 0.95).Microseconds()
	seg.P99Micros = percentile(latencies, 0.99).Microseconds()
	seg.QPS = float64(seg.Requests) / cfg.duration.Seconds()
	return seg
}

// percentile reads the p-quantile from an ascending latency slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// errRejected marks 429/503 responses: admission shedding, not failures.
var errRejected = errors.New("rejected by admission control")

// uniqueQuery issues a never-seen-before query: the cold, pure-miss path.
func (w *workload) uniqueQuery(c *clientState) (string, error) {
	q := onex.Query{Values: perturb(w.window(c.rng), 0.1, c.rng), K: 3}
	body, _ := json.Marshal(q)
	_, _, err := w.post("/api/v1/datasets/"+w.name+"/query", body, false)
	return "query", err
}

// poolQuery issues one of the hot pool's fixed queries.
func (w *workload) poolQuery(c *clientState) (string, error) {
	body := w.queryPool[c.rng.Intn(len(w.queryPool))]
	_, _, err := w.post("/api/v1/datasets/"+w.name+"/query", body, false)
	return "query", err
}

// mixedOp draws one operation from the mixed-traffic distribution.
func (w *workload) mixedOp(c *clientState) (string, error) {
	switch r := c.rng.Float64(); {
	case r < 0.55:
		return w.poolQuery(c)
	case r < 0.70:
		body := w.analysisPool[c.rng.Intn(len(w.analysisPool))]
		_, _, err := w.post("/api/v1/datasets/"+w.name+"/analyze", body, false)
		return "analyze", err
	case r < 0.80:
		return "stream", w.streamQuery(c)
	case r < 0.90:
		return "probe", w.probeQuery(c)
	default:
		return "ingest", w.ingest(c)
	}
}

// streamQuery drives the progressive endpoint and drains the NDJSON body.
func (w *workload) streamQuery(c *clientState) error {
	q := onex.Query{Values: perturb(w.window(c.rng), 0.05, c.rng), K: 2}
	body, _ := json.Marshal(q)
	resp, err := w.client.Post(w.base+"/api/v1/datasets/"+w.name+"/query/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return statusErr(resp.StatusCode)
}

// probeQuery runs the stale oracle: the fixed probe in certified-exact
// mode. Ingest only ever adds candidates, so the certified best distance
// is non-increasing over any one client's sequential observations; an
// increase proves a stale (pre-ingest) answer was served after a fresher
// one — with versioned cache keys, impossible unless the keying is broken.
func (w *workload) probeQuery(c *clientState) error {
	q := onex.Query{Values: w.probe, K: 1, Mode: onex.ModeExact}
	body, _ := json.Marshal(q)
	data, status, err := w.post("/api/v1/datasets/"+w.name+"/query", body, false)
	if err != nil || status != http.StatusOK {
		return err
	}
	var res onex.Result
	if jerr := json.Unmarshal(data, &res); jerr != nil || len(res.Matches) == 0 {
		return jerr
	}
	d := res.Matches[0].Dist
	if c.hasBest && d > c.probeBest+1e-9 {
		w.staleReads.Add(1)
	}
	c.probeBest, c.hasBest = d, true
	return nil
}

// ingest appends a fresh series derived from the probe, bumping the
// dataset version and (eventually) improving the probe's best match.
func (w *workload) ingest(c *clientState) error {
	n := w.ingestSeq.Add(1)
	vals := perturb(w.probe, 0.3/float64(n), c.rng)
	body, _ := json.Marshal(map[string]any{
		"series": fmt.Sprintf("onexload-ingest-%d", n),
		"values": vals,
	})
	_, _, err := w.post("/api/v1/datasets/"+w.name+"/series", body, false)
	return err
}

// verifyHotPool replays every hot-pool query twice — once normally (a
// cache hit by now) and once with Cache-Control: no-cache (computed
// fresh) — and counts byte mismatches after normalizing wall-time fields.
func (w *workload) verifyHotPool() int64 {
	var mismatches int64
	for _, body := range w.queryPool {
		cached, s1, err1 := w.post("/api/v1/datasets/"+w.name+"/query", body, false)
		fresh, s2, err2 := w.post("/api/v1/datasets/"+w.name+"/query", body, true)
		if err1 != nil || err2 != nil || s1 != http.StatusOK || s2 != http.StatusOK {
			mismatches++
			continue
		}
		if !bytes.Equal(normalizeWall(cached), normalizeWall(fresh)) {
			mismatches++
		}
	}
	return mismatches
}

var wallRE = regexp.MustCompile(`"wall_micros":\d+`)

// normalizeWall zeroes the only nondeterministic response field (measured
// wall time), so equal answers compare byte-equal.
func normalizeWall(b []byte) []byte {
	return wallRE.ReplaceAll(b, []byte(`"wall_micros":0`))
}

// scrapeMetrics fills the cache and rejection numbers from GET /metrics.
func (w *workload) scrapeMetrics(rep *Report) error {
	resp, err := w.client.Get(w.base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, valStr, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			continue
		}
		switch {
		case name == "onex_cache_hits_total":
			rep.Cache.Hits = int64(val)
		case name == "onex_cache_misses_total":
			rep.Cache.Misses = int64(val)
		case name == "onex_cache_evictions_total":
			rep.Cache.Evictions = int64(val)
		case strings.HasPrefix(name, "onex_rejected_total{"):
			if reason, found := labelValue(name, "reason"); found {
				rep.Rejected[reason] = int64(val)
			}
		}
	}
	if total := rep.Cache.Hits + rep.Cache.Misses; total > 0 {
		rep.Cache.HitRate = float64(rep.Cache.Hits) / float64(total)
	}
	return nil
}

// labelValue extracts one label's value from a metric sample name like
// `family{reason="overload"}`.
func labelValue(sample, label string) (string, bool) {
	i := strings.Index(sample, label+"=\"")
	if i < 0 {
		return "", false
	}
	rest := sample[i+len(label)+2:]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// post issues one JSON POST, fully reading the response. noCache opts out
// of the server's cache read for this request.
func (w *workload) post(path string, body []byte, noCache bool) ([]byte, int, error) {
	req, err := http.NewRequest(http.MethodPost, w.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if noCache {
		req.Header.Set("Cache-Control", "no-cache")
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return data, resp.StatusCode, statusErr(resp.StatusCode)
}

func (w *workload) getJSON(path string, v any) error {
	resp, err := w.client.Get(w.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func statusErr(code int) error {
	switch {
	case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
		return errRejected
	case code >= 400:
		return fmt.Errorf("status %d", code)
	default:
		return nil
	}
}
