// Command onex is the ONEX command-line explorer: generate datasets, build
// and inspect ONEX bases, run similarity and seasonal queries, get
// threshold recommendations, and render the demo's SVG views.
//
// Usage:
//
//	onex gen       -kind matters -indicator GrowthRate -out growth.csv
//	onex build     -data growth.csv -out growth.base [-st 0.1 -minlen 4 -maxlen 12]
//	onex query     -data growth.csv -series MA -start 0 -len 12 [-k 5] [-exclude-source] [-mode exact] [-workers 4] [-stats]
//	onex query     -data growth.csv -base growth.base -series MA -len 12   # reuse base
//	onex query     -data growth.csv -series MA -len 12 -progressive        # stream approx → exact
//	onex range     -data growth.csv -series MA -len 12 -maxdist 0.05 [-workers 4] [-stats]
//
// query and range both map their flags onto the library's unified
// onex.Query and run it through DB.Find; Ctrl-C cancels a long search and
// -workers bounds the per-query worker pool (0 = all cores, 1 = serial).
// -progressive switches query to DB.Stream: the approximate answer prints
// immediately and refines line by line — one line per certified wave —
// until the exact result, so a long exact search shows progress instead
// of silence (Ctrl-C stops it mid-wave).
//
//	onex analyze   -data growth.csv -kind overview [-length 8 -k 12] [-stats]
//	onex analyze   -data power.csv -kind seasonal -series household-00 -minlen 12 -maxlen 12
//	onex analyze   -data growth.csv -kind similarity-sweep -series MA -len 8 -thresholds 0.02,0.05,0.1
//
// analyze maps its flags onto the library's unified onex.Analysis and runs
// it through DB.Analyze; every exploration scenario (overview,
// group-members, length-summaries, seasonal, common-patterns,
// similarity-sweep, threshold-recommend) is one -kind away, and Ctrl-C
// cancels a long walk. The older per-scenario subcommands remain as
// shortcuts:
//
//	onex seasonal  -data power.csv -series household-00 -minlen 12 -maxlen 12
//	onex recommend -data growth.csv
//	onex overview  -data growth.csv [-length 8 -k 12]
//	onex viz       -data growth.csv -kind match -series MA -start 0 -len 12 -out fig.svg
//
// Persistence: snapshot builds a dataset once into a store directory
// (snapshot + write-ahead log), after which every subcommand warm-opens it
// with -store instead of -data — milliseconds instead of a rebuild — and
// compact folds an ingest-heavy WAL back into a fresh snapshot:
//
//	onex snapshot  -data growth.csv -store growth.store [-st 0.1 -maxlen 12]
//	onex query     -store growth.store -series MA -start 0 -len 12
//	onex compact   -store growth.store
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/store"
	"repro/internal/ts"
	"repro/internal/viz"
	"repro/onex"
)

// stdout is swapped by tests to capture subcommand output.
var stdout io.Writer = os.Stdout

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "build":
		err = cmdBuild(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "range":
		err = cmdRange(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "seasonal":
		err = cmdSeasonal(os.Args[2:])
	case "recommend":
		err = cmdRecommend(os.Args[2:])
	case "overview":
		err = cmdOverview(os.Args[2:])
	case "viz":
		err = cmdViz(os.Args[2:])
	case "snapshot":
		err = cmdSnapshot(os.Args[2:])
	case "compact":
		err = cmdCompact(os.Args[2:])
	case "replica-status":
		err = cmdReplicaStatus(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "onex: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "onex:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: onex <gen|build|query|range|analyze|seasonal|recommend|overview|viz|snapshot|compact|replica-status> [flags]
run "onex <subcommand> -h" for flags`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "matters", "matters|electricity|cbf|walks|sines|ecg")
	indicator := fs.String("indicator", "GrowthRate", "MATTERS indicator (matters kind)")
	out := fs.String("out", "", "output file (.csv/.json/UCR text); required")
	n := fs.Int("n", 0, "series count / households / per-class count (kind-specific default)")
	length := fs.Int("len", 0, "series length or days (kind-specific default)")
	seed := fs.Int64("seed", 0, "random seed (0 = fixed default)")
	_ = fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	var d *ts.Dataset
	switch *kind {
	case "matters":
		ind, ok := indicatorByName(*indicator)
		if !ok {
			return fmt.Errorf("gen: unknown indicator %q", *indicator)
		}
		d = gen.Matters(gen.MattersOptions{Indicator: ind, Periods: *length, Seed: *seed})
	case "electricity":
		d = gen.ElectricityLoad(gen.ElectricityOptions{Households: *n, Days: *length, Seed: *seed})
	case "cbf":
		d = gen.CBF(gen.CBFOptions{PerClass: *n, Length: *length, Seed: *seed})
	case "walks":
		d = gen.RandomWalks(gen.WalkOptions{Num: *n, Length: *length, Seed: *seed})
	case "sines":
		d = gen.WarpedSines(gen.SineOptions{PerClass: *n, Length: *length, Seed: *seed})
	case "ecg":
		d = gen.ECG(gen.ECGOptions{Num: *n, Beats: *length, Arrhythmic: true, Seed: *seed})
	default:
		return fmt.Errorf("gen: unknown kind %q", *kind)
	}
	if err := ts.SaveFile(*out, d); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s: %d series, %d values\n", *out, d.Len(), d.TotalValues())
	return nil
}

func indicatorByName(name string) (gen.Indicator, bool) {
	for _, ind := range []gen.Indicator{
		gen.GrowthRate, gen.UnemploymentRate, gen.TechEmployment, gen.MedianIncome, gen.TaxBurden,
	} {
		if strings.EqualFold(ind.String(), name) {
			return ind, true
		}
	}
	return 0, false
}

// openFlags holds the flags shared by every subcommand that opens a DB.
type openFlags struct {
	data   *string
	base   *string
	store  *string
	mmap   *bool
	st     *float64
	minLen *int
	maxLen *int
	band   *int
	exact  *bool
	// attach, when set before open, makes the cold-opened DB durable: the
	// engine is passed through Config.Store (snapshot subcommand only).
	attach store.Engine
}

func addOpenFlags(fs *flag.FlagSet) *openFlags {
	return &openFlags{
		data:   fs.String("data", "", "dataset file (required unless -store)"),
		base:   fs.String("base", "", "previously saved base file (skips preprocessing)"),
		store:  fs.String("store", "", "warm-open from this store directory (see 'onex snapshot'); replaces -data"),
		mmap:   fs.Bool("mmap", false, "with -store: serve values as zero-copy views over the memory-mapped snapshot (beyond-RAM datasets page in on demand)"),
		st:     fs.Float64("st", 0, "per-point similarity threshold in normalized units (0 = auto)"),
		minLen: fs.Int("minlen", 0, "minimum indexed subsequence length"),
		maxLen: fs.Int("maxlen", 0, "maximum indexed subsequence length"),
		band:   fs.Int("band", 0, "Sakoe-Chiba band width (0 = default, negative = unconstrained)"),
		exact:  fs.Bool("exact", false, "use certified-exact search instead of the paper's approximate mode"),
	}
}

func (of *openFlags) open() (*onex.DB, error) {
	if *of.store != "" {
		if *of.data != "" || *of.base != "" {
			return nil, fmt.Errorf("-store replaces -data/-base (the store holds the dataset and its index)")
		}
		return onex.OpenStore(*of.store, onex.Config{MmapValues: *of.mmap})
	}
	if *of.mmap {
		return nil, fmt.Errorf("-mmap needs a snapshot to map; pair it with -store")
	}
	if *of.data == "" {
		return nil, fmt.Errorf("-data is required")
	}
	if *of.base != "" {
		d, err := onex.LoadDataset(*of.data)
		if err != nil {
			return nil, err
		}
		return onex.OpenWithBase(d, *of.base, onex.Config{
			Band:  *of.band,
			Exact: *of.exact,
			Store: of.attach,
		})
	}
	return onex.OpenFile(*of.data, onex.Config{
		ST:        *of.st,
		MinLength: *of.minLen,
		MaxLength: *of.maxLen,
		Band:      *of.band,
		Exact:     *of.exact,
		Store:     of.attach,
	})
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	of := addOpenFlags(fs)
	out := fs.String("out", "", "save the built base to this file")
	_ = fs.Parse(args)
	db, err := of.open()
	if err != nil {
		return err
	}
	st := db.Stats()
	fmt.Fprintf(stdout, "dataset:       %s (%d series)\n", *of.data, st.Series)
	fmt.Fprintf(stdout, "ST:            %.6f (per point, normalized units)\n", db.ST())
	fmt.Fprintf(stdout, "subsequences:  %d\n", st.Subsequences)
	fmt.Fprintf(stdout, "groups:        %d\n", st.Groups)
	fmt.Fprintf(stdout, "compaction:    %.1fx\n", st.CompactionRatio)
	fmt.Fprintf(stdout, "build time:    %d ms\n", st.BuildMillis)
	if *out != "" {
		if err := db.SaveBase(*out); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "base saved:    %s\n", *out)
	}
	return nil
}

// queryContext returns a context cancelled by Ctrl-C, so long exact-mode
// scans abort promptly instead of running to completion.
func queryContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt)
}

func cmdRange(args []string) error {
	fs := flag.NewFlagSet("range", flag.ExitOnError)
	of := addOpenFlags(fs)
	series := fs.String("series", "", "query series name (required)")
	start := fs.Int("start", 0, "query window start")
	length := fs.Int("len", 0, "query window length (required)")
	maxDist := fs.Float64("maxdist", 0.1, "inclusive distance threshold (normalized per-point units)")
	limit := fs.Int("limit", 20, "maximum matches to print (0 = all)")
	workers := fs.Int("workers", 0, "worker pool for the scan (0 = all cores, 1 = serial)")
	stats := fs.Bool("stats", false, "print search statistics after the results")
	_ = fs.Parse(args)
	if *series == "" || *length <= 0 {
		return fmt.Errorf("range: -series and -len are required")
	}
	if *maxDist <= 0 {
		return fmt.Errorf("range: -maxdist must be > 0")
	}
	db, err := of.open()
	if err != nil {
		return err
	}
	ctx, stop := queryContext()
	defer stop()
	// Range scans are always certified-exact, so there is no -mode here.
	res, err := db.Find(ctx, onex.Query{
		Window:  onex.Window{Series: *series, Start: *start, Length: *length},
		MaxDist: *maxDist,
		K:       *limit,
		Workers: *workers,
	})
	if err != nil {
		return err
	}
	ms := res.Matches
	fmt.Fprintf(stdout, "%d matches within %.4f of %s[%d:%d):\n", len(ms), *maxDist, *series, *start, *start+*length)
	for i, m := range ms {
		fmt.Fprintf(stdout, "  #%-3d %s[%d:%d)  DTW=%.6f\n", i+1, m.Series, m.Start, m.Start+m.Length, m.Dist)
	}
	if *stats {
		printStats(res.Stats)
	}
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	of := addOpenFlags(fs)
	series := fs.String("series", "", "query series name (required)")
	start := fs.Int("start", 0, "query window start")
	length := fs.Int("len", 0, "query window length (required)")
	k := fs.Int("k", 1, "number of matches to return")
	excludeSource := fs.Bool("exclude-source", false, "exclude the whole source series")
	mode := fs.String("mode", "", "per-query mode override: approx|exact (default: as opened)")
	workers := fs.Int("workers", 0, "worker pool for the scan (0 = all cores, 1 = serial)")
	progressive := fs.Bool("progressive", false, "stream the answer: approximate first, refined per certified wave, exact last")
	stats := fs.Bool("stats", false, "print search statistics after the results")
	_ = fs.Parse(args)
	if *series == "" || *length <= 0 {
		return fmt.Errorf("query: -series and -len are required")
	}
	db, err := of.open()
	if err != nil {
		return err
	}
	q := onex.Query{
		Window:  onex.Window{Series: *series, Start: *start, Length: *length},
		K:       *k,
		Exclude: onex.Exclude{Self: true},
		Mode:    onex.QueryMode(*mode),
		Workers: *workers,
	}
	if *excludeSource {
		q.Exclude = onex.Exclude{Series: []string{*series}}
	}
	ctx, stop := queryContext()
	defer stop()
	if *progressive {
		return runProgressive(ctx, db, q, *stats)
	}
	res, err := db.Find(ctx, q)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "query:  %s[%d:%d)\n", *series, *start, *start+*length)
	if len(res.Matches) == 1 {
		m := res.Matches[0]
		fmt.Fprintf(stdout, "match:  %s[%d:%d)\n", m.Series, m.Start, m.Start+m.Length)
		fmt.Fprintf(stdout, "DTW:    %.6f (normalized units; ST = %.6f)\n", m.Dist, db.ST())
		fmt.Fprintf(stdout, "values: %s\n", formatValues(m.Values, 8))
	} else {
		for i, m := range res.Matches {
			fmt.Fprintf(stdout, "  #%-3d %s[%d:%d)  DTW=%.6f\n", i+1, m.Series, m.Start, m.Start+m.Length, m.Dist)
		}
	}
	if *stats {
		printStats(res.Stats)
	}
	return nil
}

// runProgressive drives db.Stream and live-renders each update: the
// approximate answer appears immediately, every certified refinement wave
// prints its current best, and the exact result closes the stream. Ctrl-C
// (the cancelled ctx) stops the walk mid-wave.
func runProgressive(ctx context.Context, db *onex.DB, q onex.Query, stats bool) error {
	x, err := db.Stream(ctx, q)
	if err != nil {
		return err
	}
	defer x.Close()
	lastRendered := ""
	for u := range x.Updates() {
		label := fmt.Sprintf("wave %-3d", u.Wave)
		switch {
		case u.Seq == 0:
			label = "approx  "
		case u.Final:
			label = "exact   "
		}
		certified := 0
		for _, c := range u.Certified {
			if c {
				certified++
			}
		}
		best := "no match yet"
		if len(u.Matches) > 0 {
			m := u.Matches[0]
			best = fmt.Sprintf("%s[%d:%d) DTW=%.6f", m.Series, m.Start, m.Start+m.Length, m.Dist)
		}
		// Print the waves that change the picture (plus a heartbeat every
		// 32nd), so a long exact walk reads as progress, not noise.
		line := fmt.Sprintf("%s certified %d/%d", best, certified, len(u.Matches))
		if line == lastRendered && !u.Final && u.Wave%32 != 0 {
			continue
		}
		lastRendered = line
		fmt.Fprintf(stdout, "%s best: %-32s certified %d/%d, %d groups remaining (%.1f ms)\n",
			label, best, certified, len(u.Matches), u.GroupsRemaining,
			float64(u.Stats.WallMicros)/1000)
		if u.Final {
			for i, m := range u.Matches {
				fmt.Fprintf(stdout, "  #%-3d %s[%d:%d)  DTW=%.6f\n", i+1, m.Series, m.Start, m.Start+m.Length, m.Dist)
			}
			if stats {
				printStats(u.Stats)
			}
		}
	}
	return x.Err()
}

func printStats(st onex.QueryStats) {
	fmt.Fprintf(stdout, "stats:  %d groups (%d pruned, %d refined), %d candidates, %d DTWs, %.3f ms\n",
		st.Groups, st.GroupsPruned, st.GroupsRefined, st.Candidates, st.DTWs,
		float64(st.WallMicros)/1000)
}

// cmdAnalyze maps flags onto the unified onex.Analysis and prints the
// payload selected by -kind.
func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	of := addOpenFlags(fs)
	kind := fs.String("kind", "", "overview|group-members|length-summaries|seasonal|common-patterns|similarity-sweep|threshold-recommend (required)")
	series := fs.String("series", "", "series to mine (seasonal) or sweep-query series (similarity-sweep)")
	length := fs.Int("length", 0, "group length (overview: 0 = auto; group-members: required)")
	index := fs.Int("index", 0, "group index within its length (group-members)")
	k := fs.Int("k", 0, "result cap: top-k groups (overview, 0 = all) or max patterns (0 = 16)")
	minOcc := fs.Int("minocc", 0, "minimum occurrences (seasonal, 0 = 2)")
	minSeries := fs.Int("minseries", 0, "minimum distinct series (common-patterns, 0 = 2)")
	start := fs.Int("start", 0, "sweep-query window start (similarity-sweep)")
	qlen := fs.Int("len", 0, "sweep-query window length (similarity-sweep)")
	thresholds := fs.String("thresholds", "", "comma-separated sweep thresholds, normalized per-point units (similarity-sweep)")
	workers := fs.Int("workers", 0, "worker pool for the walk (0 = all cores, 1 = serial)")
	stats := fs.Bool("stats", false, "print walk statistics after the results")
	_ = fs.Parse(args)
	if *kind == "" {
		return fmt.Errorf("analyze: -kind is required")
	}
	a := onex.Analysis{
		Kind:           onex.AnalysisKind(*kind),
		Series:         *series,
		Length:         *length,
		Index:          *index,
		K:              *k,
		Lengths:        onex.Lengths{Min: *of.minLen, Max: *of.maxLen},
		MinOccurrences: *minOcc,
		MinSeries:      *minSeries,
		Workers:        *workers,
	}
	if *thresholds != "" {
		for _, f := range strings.Split(*thresholds, ",") {
			th, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return fmt.Errorf("analyze: bad threshold %q", f)
			}
			a.Thresholds = append(a.Thresholds, th)
		}
	}
	if a.Kind == onex.AnalysisSimilaritySweep {
		if *series == "" || *qlen <= 0 {
			return fmt.Errorf("analyze: similarity-sweep needs -series and -len")
		}
		a.Series = ""
		a.Window = onex.Window{Series: *series, Start: *start, Length: *qlen}
	}
	db, err := of.open()
	if err != nil {
		return err
	}
	ctx, stop := queryContext()
	defer stop()
	res, err := db.Analyze(ctx, a)
	if err != nil {
		return err
	}
	printAnalysis(res)
	if *stats {
		fmt.Fprintf(stdout, "stats:  %d groups, %d candidates, %d DTWs, %.3f ms\n",
			res.Stats.Groups, res.Stats.Candidates, res.Stats.DTWs,
			float64(res.Stats.WallMicros)/1000)
	}
	return nil
}

// printAnalysis renders the one payload an AnalysisResult carries.
func printAnalysis(res onex.AnalysisResult) {
	switch res.Request.Kind {
	case onex.AnalysisOverview:
		if len(res.Groups) == 0 {
			fmt.Fprintln(stdout, "no groups")
			return
		}
		fmt.Fprintf(stdout, "top %d similarity groups (length %d):\n", len(res.Groups), res.Request.Length)
		for i, g := range res.Groups {
			fmt.Fprintf(stdout, "  #%-3d count=%-5d rep=%s\n", i+1, g.Count, formatValues(g.Rep, 8))
		}
	case onex.AnalysisGroupMembers:
		fmt.Fprintf(stdout, "group %d/%d: %d members (nearest representative first):\n",
			res.Request.Length, res.Request.Index, len(res.Members))
		for i, m := range res.Members {
			fmt.Fprintf(stdout, "  #%-3d %s[%d:%d)  repED=%.6f\n", i+1, m.Series, m.Start, m.Start+m.Length, m.RepED)
		}
	case onex.AnalysisLengthSummaries:
		fmt.Fprintln(stdout, "length  groups  subsequences")
		for _, ls := range res.LengthSummaries {
			fmt.Fprintf(stdout, "%6d  %6d  %12d\n", ls.Length, ls.Groups, ls.Subsequences)
		}
	case onex.AnalysisSeasonal:
		if len(res.Patterns) == 0 {
			fmt.Fprintln(stdout, "no repeating patterns found")
			return
		}
		for i, p := range res.Patterns {
			fmt.Fprintf(stdout, "#%d length=%d occurrences=%d mean_gap=%.1f starts=%v\n",
				i+1, p.Length, p.Occurrences, p.MeanGap, p.Starts)
		}
	case onex.AnalysisCommonPatterns:
		if len(res.Common) == 0 {
			fmt.Fprintln(stdout, "no shared shapes found")
			return
		}
		for i, c := range res.Common {
			fmt.Fprintf(stdout, "#%d length=%d series=%d members=%d rep=%s\n",
				i+1, c.Length, len(c.Series), c.TotalMembers, formatValues(c.Rep, 8))
		}
	case onex.AnalysisSimilaritySweep:
		fmt.Fprintln(stdout, "maxdist   matches")
		for _, p := range res.Sweep {
			fmt.Fprintf(stdout, "%.5f  %8d\n", p.MaxDist, p.Matches)
		}
	case onex.AnalysisThresholds:
		t := res.Thresholds
		fmt.Fprintf(stdout, "data-driven similarity thresholds (normalized units; %d sampled pairs at probe length %d):\n",
			len(t.Sample), t.ProbeLength)
		for _, r := range t.Recommendations {
			fmt.Fprintf(stdout, "  %-9s ST=%.6f (p%.0f of pairwise ED; ~%d groups, %.1fx compaction at probe length)\n",
				r.Label, r.ST, r.Percentile*100, r.EstGroups, r.EstCompaction)
		}
	}
}

func cmdSeasonal(args []string) error {
	fs := flag.NewFlagSet("seasonal", flag.ExitOnError)
	of := addOpenFlags(fs)
	series := fs.String("series", "", "series to mine (required)")
	minOcc := fs.Int("minocc", 2, "minimum occurrences")
	_ = fs.Parse(args)
	if *series == "" {
		return fmt.Errorf("seasonal: -series is required")
	}
	db, err := of.open()
	if err != nil {
		return err
	}
	pats, err := db.Seasonal(*series, *of.minLen, *of.maxLen, *minOcc)
	if err != nil {
		return err
	}
	if len(pats) == 0 {
		fmt.Fprintln(stdout, "no repeating patterns found")
		return nil
	}
	for i, p := range pats {
		fmt.Fprintf(stdout, "#%d length=%d occurrences=%d mean_gap=%.1f starts=%v\n",
			i+1, p.Length, p.Occurrences, p.MeanGap, p.Starts)
	}
	return nil
}

func cmdRecommend(args []string) error {
	fs := flag.NewFlagSet("recommend", flag.ExitOnError)
	of := addOpenFlags(fs)
	_ = fs.Parse(args)
	db, err := of.open()
	if err != nil {
		return err
	}
	recs, err := db.RecommendThresholds()
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "data-driven similarity thresholds (normalized units):")
	for _, r := range recs {
		fmt.Fprintf(stdout, "  %-9s ST=%.6f (p%.0f of pairwise ED; ~%d groups, %.1fx compaction at probe length)\n",
			r.Label, r.ST, r.Percentile*100, r.EstGroups, r.EstCompaction)
	}
	return nil
}

func cmdOverview(args []string) error {
	fs := flag.NewFlagSet("overview", flag.ExitOnError)
	of := addOpenFlags(fs)
	length := fs.Int("length", 0, "group length (0 = auto-select)")
	k := fs.Int("k", 12, "top-k groups")
	_ = fs.Parse(args)
	db, err := of.open()
	if err != nil {
		return err
	}
	groups := db.Overview(*length, *k)
	if len(groups) == 0 {
		fmt.Fprintln(stdout, "no groups")
		return nil
	}
	fmt.Fprintf(stdout, "top %d similarity groups (length %d):\n", len(groups), groups[0].Length)
	for i, g := range groups {
		fmt.Fprintf(stdout, "  #%-3d count=%-5d rep=%s\n", i+1, g.Count, formatValues(g.Rep, 8))
	}
	return nil
}

func cmdViz(args []string) error {
	fs := flag.NewFlagSet("viz", flag.ExitOnError)
	of := addOpenFlags(fs)
	kind := fs.String("kind", "match", "match|radial|scatter|seasonal|overview")
	series := fs.String("series", "", "query/source series")
	other := fs.String("other", "", "second series (radial/scatter)")
	start := fs.Int("start", 0, "query window start (match)")
	length := fs.Int("len", 0, "window length (match/seasonal)")
	k := fs.Int("k", 12, "group count (overview)")
	out := fs.String("out", "", "output SVG path (required)")
	_ = fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("viz: -out is required")
	}
	db, err := of.open()
	if err != nil {
		return err
	}
	var svg string
	switch *kind {
	case "match":
		if *series == "" || *length <= 0 {
			return fmt.Errorf("viz match: -series and -len are required")
		}
		m, err := db.BestMatchForSeries(*series, *start, *length)
		if err != nil {
			return err
		}
		vals, err := db.SeriesValues(*series)
		if err != nil {
			return err
		}
		path := make(dist.WarpPath, len(m.Path))
		for i, p := range m.Path {
			path[i] = dist.PathStep{I: p[0], J: p[1]}
		}
		svg = viz.WarpChart(
			fmt.Sprintf("%s[%d:%d) vs %s[%d:%d), DTW=%.4f", *series, *start, *start+*length,
				m.Series, m.Start, m.Start+m.Length, m.Dist),
			viz.NamedSeries{Name: *series, Values: vals[*start : *start+*length]},
			viz.NamedSeries{Name: m.Series, Values: m.Values},
			path, 640, 280)
	case "radial", "scatter":
		if *series == "" || *other == "" {
			return fmt.Errorf("viz %s: -series and -other are required", *kind)
		}
		av, err := db.SeriesValues(*series)
		if err != nil {
			return err
		}
		bv, err := db.SeriesValues(*other)
		if err != nil {
			return err
		}
		a := viz.NamedSeries{Name: *series, Values: av}
		b := viz.NamedSeries{Name: *other, Values: bv}
		if *kind == "radial" {
			svg = viz.RadialChart("radial comparison", a, b, 360)
		} else {
			svg = viz.ConnectedScatter("connected scatter", a, b, nil, 360)
		}
	case "seasonal":
		if *series == "" {
			return fmt.Errorf("viz seasonal: -series is required")
		}
		pats, err := db.Seasonal(*series, *length, *length, 2)
		if err != nil {
			return err
		}
		vals, err := db.SeriesValues(*series)
		if err != nil {
			return err
		}
		var segs []viz.SeasonalSegment
		title := fmt.Sprintf("seasonal — %s (no pattern)", *series)
		if len(pats) > 0 {
			for _, st := range pats[0].Starts {
				segs = append(segs, viz.SeasonalSegment{Start: st, Length: pats[0].Length})
			}
			title = fmt.Sprintf("seasonal — %s: %d x length-%d pattern", *series,
				pats[0].Occurrences, pats[0].Length)
		}
		svg = viz.SeasonalView(title, vals, segs, 760, 260)
	case "overview":
		groups := db.Overview(*length, *k)
		cells := make([]viz.OverviewCell, len(groups))
		for i, g := range groups {
			cells[i] = viz.OverviewCell{Rep: g.Rep, Count: g.Count,
				Label: fmt.Sprintf("len %d · n=%d", g.Length, g.Count)}
		}
		svg = viz.OverviewGrid("ONEX similarity groups", cells, 4, 120, 72)
	default:
		return fmt.Errorf("viz: unknown kind %q", *kind)
	}
	if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", *out)
	return nil
}

// cmdSnapshot builds a dataset (or reuses a saved base) and persists it
// into a store directory: one snapshot file plus an empty WAL, ready for
// warm opens with -store.
func cmdSnapshot(args []string) error {
	fs := flag.NewFlagSet("snapshot", flag.ExitOnError)
	of := addOpenFlags(fs)
	_ = fs.Parse(args)
	if *of.store == "" {
		return fmt.Errorf("snapshot: -store is required")
	}
	if *of.data == "" {
		return fmt.Errorf("snapshot: -data is required (the dataset to persist)")
	}
	dir := *of.store
	*of.store = "" // open cold from -data/-base; the engine attaches below
	eng, err := store.Open(dir)
	if err != nil {
		return err
	}
	of.attach = eng
	// Open writes the initial snapshot through the attached engine before
	// returning, so success here means the store is complete on disk.
	db, err := of.open()
	if err != nil {
		eng.Close()
		return err
	}
	st, _ := db.StoreStatus()
	if err := db.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "snapshot written: %s (%d bytes, version %d)\n", dir, st.SnapshotBytes, st.SnapshotVersion)
	fmt.Fprintf(stdout, "warm-open with:   -store %s\n", dir)
	return nil
}

// cmdCompact warm-opens a store directory and folds its WAL into a fresh
// snapshot, so the next open replays nothing.
func cmdCompact(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	dir := fs.String("store", "", "store directory to compact (required)")
	_ = fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("compact: -store is required")
	}
	db, err := onex.OpenStore(*dir, onex.Config{})
	if err != nil {
		return err
	}
	pre, _ := db.StoreStatus()
	if err := db.Snapshot(); err != nil {
		_ = db.Close()
		return err
	}
	post, _ := db.StoreStatus()
	if err := db.Close(); err != nil {
		return err
	}
	if !pre.Recovery.Empty() {
		fmt.Fprintf(stdout, "recovery: %s\n", pre.Recovery)
	}
	fmt.Fprintf(stdout, "compacted %s: folded %d WAL record(s) into snapshot (%d bytes, version %d)\n",
		*dir, pre.WALRecords, post.SnapshotBytes, post.SnapshotVersion)
	return nil
}

func formatValues(vals []float64, max int) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, v := range vals {
		if i >= max {
			fmt.Fprintf(&b, " ... +%d more", len(vals)-max)
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.3f", v)
	}
	b.WriteByte(']')
	return b.String()
}
