package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"repro/internal/replica"
)

// cmdReplicaStatus implements `onex replica-status`: fetch a serving
// follower's /healthz and render its replication block — per-dataset
// applied/leader sequence, lag, stream state, and reconnect counters — as
// a table (or raw JSON with -json). Pointed at a leader it reports that
// the server is not following anyone.
func cmdReplicaStatus(args []string) error {
	fs := flag.NewFlagSet("replica-status", flag.ExitOnError)
	server := fs.String("server", "http://localhost:8080", "follower base URL")
	asJSON := fs.Bool("json", false, "print the raw replication JSON instead of a table")
	_ = fs.Parse(args)

	base := strings.TrimRight(*server, "/")
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("replica-status: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica-status: %s answered %s", base, resp.Status)
	}
	var health struct {
		Leader      string                    `json:"leader"`
		Replication map[string]replica.Status `json:"replication"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return fmt.Errorf("replica-status: decode healthz: %w", err)
	}
	if health.Leader == "" && len(health.Replication) == 0 {
		fmt.Fprintf(stdout, "%s is not following a leader (leader or standalone instance)\n", base)
		return nil
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(health)
	}
	fmt.Fprintf(stdout, "follower %s -> leader %s\n", base, health.Leader)
	names := make([]string, 0, len(health.Replication))
	for n := range health.Replication {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(stdout, "%-20s %-13s %10s %10s %6s %12s %10s %9s\n",
		"DATASET", "STATE", "APPLIED", "LEADER", "LAG", "LAST-RECORD", "RECONNECTS", "SNAPSHOTS")
	for _, n := range names {
		st := health.Replication[n]
		last := "never"
		if st.SecondsSinceRecord >= 0 {
			last = fmt.Sprintf("%.1fs ago", st.SecondsSinceRecord)
		}
		fmt.Fprintf(stdout, "%-20s %-13s %10d %10d %6d %12s %10d %9d\n",
			n, st.State, st.AppliedSeq, st.LeaderSeq, st.LagRecords, last, st.Reconnects, st.SnapshotsShipped)
		if st.LastError != "" {
			fmt.Fprintf(stdout, "  last error: %s\n", st.LastError)
		}
	}
	return nil
}
