package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs a subcommand with stdout redirected into a buffer.
func capture(t *testing.T, f func([]string) error, args []string) string {
	t.Helper()
	var buf bytes.Buffer
	old := stdout
	stdout = &buf
	defer func() { stdout = old }()
	if err := f(args); err != nil {
		t.Fatalf("%v (output so far: %s)", err, buf.String())
	}
	return buf.String()
}

// captureErr is capture for paths expected to fail.
func captureErr(t *testing.T, f func([]string) error, args []string) error {
	t.Helper()
	var buf bytes.Buffer
	old := stdout
	stdout = &buf
	defer func() { stdout = old }()
	return f(args)
}

func genGrowth(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "growth.csv")
	out := capture(t, cmdGen, []string{"-kind", "matters", "-indicator", "GrowthRate", "-out", path})
	if !strings.Contains(out, "50 series") {
		t.Fatalf("gen output: %s", out)
	}
	return path
}

func TestCmdGenAllKinds(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{"matters", "electricity", "cbf", "walks", "sines", "ecg"} {
		path := filepath.Join(dir, kind+".csv")
		out := capture(t, cmdGen, []string{"-kind", kind, "-out", path, "-len", "20"})
		if !strings.Contains(out, "wrote") {
			t.Fatalf("gen %s output: %s", kind, out)
		}
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("gen %s wrote nothing: %v", kind, err)
		}
	}
	if err := captureErr(t, cmdGen, []string{"-kind", "bogus", "-out", filepath.Join(dir, "x.csv")}); err == nil {
		t.Fatal("bogus kind accepted")
	}
	if err := captureErr(t, cmdGen, []string{"-kind", "matters"}); err == nil {
		t.Fatal("missing -out accepted")
	}
	if err := captureErr(t, cmdGen, []string{"-kind", "matters", "-indicator", "Bogus", "-out", filepath.Join(dir, "y.csv")}); err == nil {
		t.Fatal("bogus indicator accepted")
	}
}

func TestCmdBuildQueryRangeFlow(t *testing.T) {
	dir := t.TempDir()
	data := genGrowth(t, dir)
	basePath := filepath.Join(dir, "growth.base")

	out := capture(t, cmdBuild, []string{"-data", data, "-minlen", "4", "-maxlen", "9", "-out", basePath})
	for _, want := range []string{"subsequences:", "groups:", "compaction:", "base saved:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("build output missing %q:\n%s", want, out)
		}
	}
	if _, err := os.Stat(basePath); err != nil {
		t.Fatal("base not written")
	}

	// Query without the base (rebuild) and with it must both answer.
	q1 := capture(t, cmdQuery, []string{"-data", data, "-minlen", "4", "-maxlen", "9",
		"-series", "MA", "-start", "0", "-len", "8", "-exclude-source"})
	if !strings.Contains(q1, "match:") {
		t.Fatalf("query output: %s", q1)
	}
	for _, line := range strings.Split(q1, "\n") {
		if strings.HasPrefix(line, "match:") && strings.Contains(line, "MA[") {
			t.Fatalf("exclude-source returned the source series: %s", line)
		}
	}
	q2 := capture(t, cmdQuery, []string{"-data", data, "-base", basePath,
		"-series", "MA", "-start", "0", "-len", "8", "-exclude-source"})
	if q1 != q2 {
		t.Fatalf("base-backed query differs:\n%s\nvs\n%s", q1, q2)
	}

	r := capture(t, cmdRange, []string{"-data", data, "-base", basePath,
		"-series", "MA", "-len", "8", "-maxdist", "0.05", "-limit", "4"})
	if !strings.Contains(r, "matches within") {
		t.Fatalf("range output: %s", r)
	}

	// Error paths.
	if err := captureErr(t, cmdQuery, []string{"-data", data}); err == nil {
		t.Fatal("query without -series accepted")
	}
	if err := captureErr(t, cmdRange, []string{"-data", data, "-series", "MA", "-len", "9999"}); err == nil {
		t.Fatal("out-of-range window accepted")
	}
	if err := captureErr(t, cmdBuild, []string{}); err == nil {
		t.Fatal("build without -data accepted")
	}
}

func TestCmdQueryUnifiedFlags(t *testing.T) {
	dir := t.TempDir()
	data := genGrowth(t, dir)
	open := []string{"-data", data, "-minlen", "4", "-maxlen", "9"}

	// -k > 1 switches to list output.
	multi := capture(t, cmdQuery, append(open, "-series", "MA", "-len", "8", "-k", "3"))
	if strings.Count(multi, "#") < 2 {
		t.Fatalf("-k 3 did not list matches:\n%s", multi)
	}

	// -stats surfaces the search counters.
	st := capture(t, cmdQuery, append(open, "-series", "MA", "-len", "8", "-stats"))
	if !strings.Contains(st, "stats:") || !strings.Contains(st, "DTWs") {
		t.Fatalf("-stats output missing counters:\n%s", st)
	}

	// -mode exact runs the certified search; it must still answer.
	ex := capture(t, cmdQuery, append(open, "-series", "MA", "-len", "8", "-mode", "exact"))
	if !strings.Contains(ex, "match:") {
		t.Fatalf("-mode exact output:\n%s", ex)
	}
	// Bogus mode is rejected.
	if err := captureErr(t, cmdQuery, append(open, "-series", "MA", "-len", "8", "-mode", "bogus")); err == nil {
		t.Fatal("bogus -mode accepted")
	}

	// range -stats works and -maxdist must be positive.
	rs := capture(t, cmdRange, append(open, "-series", "MA", "-len", "8", "-maxdist", "0.1", "-stats"))
	if !strings.Contains(rs, "matches within") || !strings.Contains(rs, "stats:") {
		t.Fatalf("range -stats output:\n%s", rs)
	}
	if err := captureErr(t, cmdRange, append(open, "-series", "MA", "-len", "8", "-maxdist", "0")); err == nil {
		t.Fatal("-maxdist 0 accepted")
	}
}

func TestCmdQueryProgressive(t *testing.T) {
	dir := t.TempDir()
	data := genGrowth(t, dir)
	open := []string{"-data", data, "-minlen", "4", "-maxlen", "9"}

	out := capture(t, cmdQuery, append(open, "-series", "MA", "-len", "8", "-k", "3",
		"-exclude-source", "-progressive", "-stats"))
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 2 {
		t.Fatalf("progressive output too short:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "approx") {
		t.Fatalf("first line is not the approximate answer:\n%s", out)
	}
	for _, want := range []string{"best:", "exact", "groups remaining", "certified", "#1", "stats:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("progressive output missing %q:\n%s", want, out)
		}
	}
	// The final exact listing must agree with a one-shot exact query.
	oneShot := capture(t, cmdQuery, append(open, "-series", "MA", "-len", "8", "-k", "3",
		"-exclude-source", "-mode", "exact"))
	for _, line := range strings.Split(oneShot, "\n") {
		if strings.Contains(line, "#") {
			if !strings.Contains(out, strings.TrimSpace(line)) {
				t.Fatalf("one-shot match %q missing from progressive output:\n%s", strings.TrimSpace(line), out)
			}
		}
	}
}

func TestCmdSeasonalRecommendOverview(t *testing.T) {
	dir := t.TempDir()
	power := filepath.Join(dir, "power.csv")
	capture(t, cmdGen, []string{"-kind", "electricity", "-n", "1", "-len", "14", "-out", power})

	s := capture(t, cmdSeasonal, []string{"-data", power, "-minlen", "12", "-maxlen", "12",
		"-series", "household-00", "-band", "2"})
	if !strings.Contains(s, "length=12") {
		t.Fatalf("seasonal output: %s", s)
	}
	if err := captureErr(t, cmdSeasonal, []string{"-data", power}); err == nil {
		t.Fatal("seasonal without -series accepted")
	}

	data := genGrowth(t, dir)
	rec := capture(t, cmdRecommend, []string{"-data", data, "-minlen", "4", "-maxlen", "8"})
	for _, want := range []string{"tight", "balanced", "loose"} {
		if !strings.Contains(rec, want) {
			t.Fatalf("recommend output missing %q:\n%s", want, rec)
		}
	}

	ov := capture(t, cmdOverview, []string{"-data", data, "-minlen", "4", "-maxlen", "8",
		"-length", "6", "-k", "5"})
	if !strings.Contains(ov, "similarity groups") || !strings.Contains(ov, "count=") {
		t.Fatalf("overview output: %s", ov)
	}
}

// TestCmdAnalyze walks every -kind through the unified analyze subcommand.
func TestCmdAnalyze(t *testing.T) {
	dir := t.TempDir()
	power := filepath.Join(dir, "power.csv")
	capture(t, cmdGen, []string{"-kind", "electricity", "-n", "2", "-len", "14", "-out", power})
	open := []string{"-data", power, "-minlen", "6", "-maxlen", "12", "-band", "2"}

	run := func(extra ...string) string {
		return capture(t, cmdAnalyze, append(append([]string{}, open...), extra...))
	}

	if out := run("-kind", "overview", "-k", "3", "-stats"); !strings.Contains(out, "similarity groups") ||
		!strings.Contains(out, "stats:") {
		t.Fatalf("overview output: %s", out)
	}
	if out := run("-kind", "group-members", "-length", "6"); !strings.Contains(out, "members") {
		t.Fatalf("group-members output: %s", out)
	}
	if out := run("-kind", "length-summaries"); !strings.Contains(out, "subsequences") {
		t.Fatalf("length-summaries output: %s", out)
	}
	if out := run("-kind", "seasonal", "-series", "household-00", "-minocc", "2"); !strings.Contains(out, "occurrences=") {
		t.Fatalf("seasonal output: %s", out)
	}
	if out := run("-kind", "common-patterns", "-minseries", "2"); !strings.Contains(out, "series=") {
		t.Fatalf("common-patterns output: %s", out)
	}
	if out := run("-kind", "similarity-sweep", "-series", "household-00", "-len", "12",
		"-thresholds", "0.05,0.1"); !strings.Contains(out, "maxdist") {
		t.Fatalf("sweep output: %s", out)
	}
	if out := run("-kind", "threshold-recommend"); !strings.Contains(out, "balanced") {
		t.Fatalf("threshold-recommend output: %s", out)
	}

	if err := captureErr(t, cmdAnalyze, open); err == nil {
		t.Fatal("missing -kind accepted")
	}
	if err := captureErr(t, cmdAnalyze, append(append([]string{}, open...), "-kind", "bogus")); err == nil {
		t.Fatal("bogus -kind accepted")
	}
	if err := captureErr(t, cmdAnalyze, append(append([]string{}, open...),
		"-kind", "similarity-sweep", "-series", "household-00", "-len", "12",
		"-thresholds", "nope")); err == nil {
		t.Fatal("bad -thresholds accepted")
	}
	if err := captureErr(t, cmdAnalyze, append(append([]string{}, open...),
		"-kind", "similarity-sweep", "-thresholds", "0.1")); err == nil {
		t.Fatal("sweep without -series/-len accepted")
	}
}

func TestCmdViz(t *testing.T) {
	dir := t.TempDir()
	data := genGrowth(t, dir)
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"match", []string{"-kind", "match", "-series", "MA", "-len", "8"}},
		{"radial", []string{"-kind", "radial", "-series", "MA", "-other", "CT"}},
		{"scatter", []string{"-kind", "scatter", "-series", "MA", "-other", "CT"}},
		{"overview", []string{"-kind", "overview", "-len", "6"}},
		{"seasonal", []string{"-kind", "seasonal", "-series", "MA", "-len", "5"}},
	} {
		out := filepath.Join(dir, tc.name+".svg")
		args := append([]string{"-data", data, "-minlen", "4", "-maxlen", "9", "-out", out}, tc.args...)
		capture(t, cmdViz, args)
		raw, err := os.ReadFile(out)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !strings.HasPrefix(string(raw), "<svg") {
			t.Fatalf("%s: not an SVG", tc.name)
		}
	}
	if err := captureErr(t, cmdViz, []string{"-data", data, "-kind", "bogus", "-out", filepath.Join(dir, "x.svg")}); err == nil {
		t.Fatal("bogus viz kind accepted")
	}
	if err := captureErr(t, cmdViz, []string{"-data", data, "-kind", "match"}); err == nil {
		t.Fatal("viz without -out accepted")
	}
}

func TestIndicatorByName(t *testing.T) {
	if _, ok := indicatorByName("growthrate"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := indicatorByName("nope"); ok {
		t.Fatal("bogus indicator found")
	}
}

func TestFormatValues(t *testing.T) {
	s := formatValues([]float64{1, 2, 3, 4, 5}, 3)
	if !strings.Contains(s, "+2 more") {
		t.Fatalf("truncation marker missing: %s", s)
	}
	if got := formatValues([]float64{1.5}, 8); got != "[1.500]" {
		t.Fatalf("formatValues = %s", got)
	}
}

// TestCmdSnapshotCompactFlow drives the persistence lifecycle end to end:
// snapshot a CSV into a store, query it warm, compact, and check the warm
// answer matches the cold one exactly.
func TestCmdSnapshotCompactFlow(t *testing.T) {
	dir := t.TempDir()
	data := genGrowth(t, dir)
	storeDir := filepath.Join(dir, "growth.store")

	out := capture(t, cmdSnapshot, []string{"-data", data, "-minlen", "4", "-maxlen", "9", "-store", storeDir})
	if !strings.Contains(out, "snapshot written:") || !strings.Contains(out, "warm-open with:") {
		t.Fatalf("snapshot output:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(storeDir, "snapshot.onex")); err != nil {
		t.Fatalf("store not created: %v", err)
	}

	// Warm query answers identically to the cold one.
	queryArgs := []string{"-series", "MA", "-start", "0", "-len", "8", "-exclude-source"}
	cold := capture(t, cmdQuery, append([]string{"-data", data, "-minlen", "4", "-maxlen", "9"}, queryArgs...))
	warm := capture(t, cmdQuery, append([]string{"-store", storeDir}, queryArgs...))
	if cold != warm {
		t.Fatalf("warm query differs from cold:\n%s\nvs\n%s", warm, cold)
	}

	out = capture(t, cmdCompact, []string{"-store", storeDir})
	if !strings.Contains(out, "compacted") {
		t.Fatalf("compact output:\n%s", out)
	}

	// Error paths: missing flags, conflicting open sources, empty store.
	if err := captureErr(t, cmdSnapshot, []string{"-data", data}); err == nil {
		t.Fatal("snapshot without -store accepted")
	}
	if err := captureErr(t, cmdSnapshot, []string{"-store", storeDir}); err == nil {
		t.Fatal("snapshot without -data accepted")
	}
	if err := captureErr(t, cmdQuery, append([]string{"-store", storeDir, "-data", data}, queryArgs...)); err == nil {
		t.Fatal("-store combined with -data accepted")
	}
	if err := captureErr(t, cmdCompact, []string{"-store", filepath.Join(dir, "empty.store")}); err == nil {
		t.Fatal("compact on a storeless directory accepted")
	}
	if err := captureErr(t, cmdCompact, []string{}); err == nil {
		t.Fatal("compact without -store accepted")
	}
}
