// Package repro's root benchmark suite: one testing.B family per
// experiment of DESIGN.md §4, plus micro-benchmarks of the distance
// substrate. Run with:
//
//	go test -bench=. -benchmem
//
// The full experiment tables (with accuracy columns and sweeps) come from
// cmd/onexbench; these benches time the same code paths at one fixed,
// CI-friendly configuration each.
package repro

import (
	"math"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/embed"
	"repro/internal/gen"
	"repro/internal/grouping"
	"repro/internal/ts"
	"repro/internal/ucrsuite"
	"repro/onex"
)

// ---- shared fixtures (built once; benches must not mutate them) ----

const (
	benchQueryLen = 32
	benchBand     = 4
	benchST       = 0.05
)

type world struct {
	data    *ts.Dataset
	base    *grouping.Base
	engine  *core.Engine
	exact   *core.Engine
	queries [][]float64
	embedIx *embed.Index
}

var (
	worldOnce sync.Once
	theWorld  *world
)

// benchWorld builds the shared E1/E2-scale fixture: 100 random walks of
// length 128, base at the query length, 16 perturbed queries.
func benchWorld(b *testing.B) *world {
	b.Helper()
	worldOnce.Do(func() {
		d := gen.RandomWalks(gen.WalkOptions{Num: 100, Length: 128, Seed: 11})
		if err := ts.NormalizeMinMax(d); err != nil {
			panic(err)
		}
		base, err := grouping.Build(d, grouping.Options{
			ST: benchST, MinLength: benchQueryLen, MaxLength: benchQueryLen,
		})
		if err != nil {
			panic(err)
		}
		engine, err := core.NewEngine(d, base, core.Options{Band: benchBand, Mode: core.ModeApprox})
		if err != nil {
			panic(err)
		}
		exact, err := core.NewEngine(d, base, core.Options{Band: benchBand, Mode: core.ModeExact})
		if err != nil {
			panic(err)
		}
		ix, err := embed.Build(d, []int{benchQueryLen}, embed.Options{
			NumRefs: 8, Refine: 16, Band: benchBand, Seed: 13,
		})
		if err != nil {
			panic(err)
		}
		theWorld = &world{
			data:    d,
			base:    base,
			engine:  engine,
			exact:   exact,
			queries: bench.PerturbedQueries(d, 16, benchQueryLen, 0.02, 17),
			embedIx: ix,
		}
	})
	return theWorld
}

// ---- E1: best-match latency, ONEX vs baselines ----

func BenchmarkE1_ONEXBestMatch(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := w.queries[i%len(w.queries)]
		if _, err := w.engine.BestMatch(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_ONEXExactBestMatch(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := w.queries[i%len(w.queries)]
		if _, err := w.exact.BestMatch(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_UCRSuiteBestMatch(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := w.queries[i%len(w.queries)]
		if _, err := ucrsuite.BestMatch(w.data, q, ucrsuite.Options{Band: benchBand}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_BruteForceBestMatch(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := w.queries[i%len(w.queries)]
		if _, err := bruteforce.BestMatch(w.data, q, bruteforce.Options{
			Band: benchBand, EarlyAbandon: false,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E2: approximate competitors at equal refine budgets ----

func BenchmarkE2_EmbedBestMatch(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := w.queries[i%len(w.queries)]
		if _, err := w.embedIx.BestMatch(q); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E3: base construction ----

func BenchmarkE3_BaseBuild_N50(b *testing.B) {
	d := gen.RandomWalks(gen.WalkOptions{Num: 50, Length: 64, Seed: 19})
	if err := ts.NormalizeMinMax(d); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := grouping.Build(d, grouping.Options{
			ST: benchST, MinLength: 8, MaxLength: 24,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3_BaseSerialize(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.base.Write(discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// ---- E4: threshold recommendation ----

func BenchmarkE4_RecommendThresholds(b *testing.B) {
	d := gen.Matters(gen.MattersOptions{Indicator: gen.GrowthRate})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RecommendThresholds(d, core.ThresholdOptions{Seed: 21}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E5: seasonal queries ----

func BenchmarkE5_Seasonal(b *testing.B) {
	d := gen.ElectricityLoad(gen.ElectricityOptions{Households: 1, Days: 28, SamplesPerDay: 12, Seed: 23})
	base, err := grouping.Build(d, grouping.Options{ST: 0.15, MinLength: 12, MaxLength: 12})
	if err != nil {
		b.Fatal(err)
	}
	engine, err := core.NewEngine(d, base, core.Options{Band: 2, Mode: core.ModeApprox})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.SeasonalByIndex(0, core.SeasonalOptions{
			MinLength: 12, MaxLength: 12, MinOccurrences: 3,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E6 / F1: public API end-to-end ----

func BenchmarkF1_OpenAndQuery(b *testing.B) {
	d := gen.Matters(gen.MattersOptions{Indicator: gen.GrowthRate})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := onex.Open(d, onex.Config{MinLength: 4, MaxLength: 10})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.BestMatchOtherSeries("MA", 0, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- substrate micro-benchmarks ----

func benchSeqs(n int) ([]float64, []float64) {
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.1)
		y[i] = math.Sin(float64(i)*0.1 + 0.4)
	}
	return x, y
}

func BenchmarkDist_ED_128(b *testing.B) {
	x, y := benchSeqs(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dist.ED(x, y)
	}
}

func BenchmarkDist_DTW_128_Unconstrained(b *testing.B) {
	x, y := benchSeqs(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dist.DTW(x, y)
	}
}

func BenchmarkDist_DTW_128_Band4(b *testing.B) {
	x, y := benchSeqs(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dist.DTWBanded(x, y, 4)
	}
}

func BenchmarkDist_DTWEarlyAbandon_128(b *testing.B) {
	x, y := benchSeqs(128)
	ub := dist.DTWBanded(x, y, 4) * 0.5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dist.DTWEarlyAbandon(x, y, 4, ub)
	}
}

func BenchmarkDist_Envelope_128(b *testing.B) {
	x, _ := benchSeqs(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = dist.Envelope(x, 128, 4)
	}
}

func BenchmarkDist_LBKeogh_128(b *testing.B) {
	x, y := benchSeqs(128)
	u, l := dist.Envelope(y, 128, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dist.LBKeogh(x, u, l, math.Inf(1))
	}
}

func BenchmarkDist_DTWPath_64(b *testing.B) {
	x, y := benchSeqs(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = dist.DTWPath(x, y, 4)
	}
}
