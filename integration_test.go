// Cross-module integration tests: each test drives a complete user journey
// through the public surfaces (generators -> facade -> persistence ->
// HTTP server -> visualization), asserting consistency between layers.
package repro

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/server"
	"repro/internal/ts"
	"repro/internal/viz"
	"repro/onex"
)

// TestPipelineGenerateSaveReloadQuery exercises: generate -> save dataset
// to disk -> reload -> open -> save base -> reopen from base -> identical
// answers across the persistence boundary.
func TestPipelineGenerateSaveReloadQuery(t *testing.T) {
	dir := t.TempDir()
	data := gen.Matters(gen.MattersOptions{Indicator: gen.GrowthRate, Periods: 16})

	csvPath := filepath.Join(dir, "growth.csv")
	if err := ts.SaveFile(csvPath, data); err != nil {
		t.Fatal(err)
	}
	reloaded, err := onex.LoadDataset(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	db, err := onex.Open(reloaded, onex.Config{MinLength: 4, MaxLength: 9})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := db.BestMatchOtherSeries("MA", 0, 8)
	if err != nil {
		t.Fatal(err)
	}

	basePath := filepath.Join(dir, "growth.base")
	if err := db.SaveBase(basePath); err != nil {
		t.Fatal(err)
	}
	db2, err := onex.OpenWithBase(reloaded, basePath, onex.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := db2.BestMatchOtherSeries("MA", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Series != m2.Series || m1.Start != m2.Start || math.Abs(m1.Dist-m2.Dist) > 1e-12 {
		t.Fatalf("answers diverge across base persistence: %+v vs %+v", m1, m2)
	}
}

// TestPipelineServerMatchesLibrary verifies that the HTTP layer returns the
// same similarity answer as a direct library call on the same data.
func TestPipelineServerMatchesLibrary(t *testing.T) {
	data := gen.Matters(gen.MattersOptions{Indicator: gen.GrowthRate, Periods: 16})
	db, err := onex.Open(data, onex.Config{MinLength: 4, MaxLength: 9})
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.BestMatchForSeries("MA", 2, 8)
	if err != nil {
		t.Fatal(err)
	}

	srv := server.New()
	srv.AddDB("growth", db)
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	body, _ := json.Marshal(server.QueryRequest{Series: "MA", Start: 2, Length: 8})
	resp, err := http.Post(hts.URL+"/api/datasets/growth/query/similarity", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got []onex.Match
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("server returned %d matches", len(got))
	}
	if got[0].Series != want.Series || got[0].Start != want.Start ||
		math.Abs(got[0].Dist-want.Dist) > 1e-12 {
		t.Fatalf("server answer %+v != library answer %+v", got[0], want)
	}
}

// TestPipelineSeasonalToVisualization drives the Fig 4 flow: seasonal query
// results render into a well-formed seasonal view whose segments equal the
// pattern's occurrences.
func TestPipelineSeasonalToVisualization(t *testing.T) {
	data := gen.ElectricityLoad(gen.ElectricityOptions{Households: 1, Days: 14, SamplesPerDay: 12})
	db, err := onex.Open(data, onex.Config{MinLength: 12, MaxLength: 12, Band: 2})
	if err != nil {
		t.Fatal(err)
	}
	pats, err := db.Seasonal("household-00", 12, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) == 0 {
		t.Fatal("no seasonal pattern in daily-cycle data")
	}

	srv := server.New()
	srv.AddDB("power", db)
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()
	resp, err := http.Get(hts.URL + "/viz/power/seasonal.svg?series=household-00&len=12")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(svg, "<svg") {
		t.Fatalf("seasonal svg: %d", resp.StatusCode)
	}
	// The base series line plus one polyline per occurrence of the top
	// pattern.
	if got := strings.Count(svg, "<polyline"); got != 1+pats[0].Occurrences {
		t.Fatalf("seasonal view polylines = %d, want %d", got, 1+pats[0].Occurrences)
	}
}

// TestPipelineIncrementalInsertEndToEnd: add a series over HTTP, then find
// it from a fresh query, and confirm the dataset stats moved.
func TestPipelineIncrementalInsertEndToEnd(t *testing.T) {
	data := gen.Matters(gen.MattersOptions{Indicator: gen.GrowthRate, Periods: 16})
	db, err := onex.Open(data, onex.Config{MinLength: 4, MaxLength: 9})
	if err != nil {
		t.Fatal(err)
	}
	before := db.Stats().Subsequences

	srv := server.New()
	srv.AddDB("growth", db)
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	ma, err := db.SeriesValues("MA")
	if err != nil {
		t.Fatal(err)
	}
	clone := make([]float64, len(ma))
	for i, v := range ma {
		clone[i] = v + 0.0002
	}
	body, _ := json.Marshal(server.AddSeriesRequest{Series: "MA-clone", Values: clone})
	resp, err := http.Post(hts.URL+"/api/datasets/growth/series", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add series status %d", resp.StatusCode)
	}
	if db.Stats().Subsequences <= before {
		t.Fatal("insert did not grow the base")
	}
	m, err := db.BestMatchOtherSeries("MA", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Series != "MA-clone" {
		t.Fatalf("clone not found as best match, got %s", m.Series)
	}
}

// TestDeterminism: generators, bases and rendered charts are pure
// functions of their seeds — the property every EXPERIMENTS.md number
// relies on.
func TestDeterminism(t *testing.T) {
	g1 := gen.Matters(gen.MattersOptions{Indicator: gen.TechEmployment, Seed: 3})
	g2 := gen.Matters(gen.MattersOptions{Indicator: gen.TechEmployment, Seed: 3})
	for i := range g1.Series {
		for j := range g1.Series[i].Values {
			if g1.Series[i].Values[j] != g2.Series[i].Values[j] {
				t.Fatal("generator not deterministic")
			}
		}
	}
	db1, err := onex.Open(g1, onex.Config{MinLength: 4, MaxLength: 8})
	if err != nil {
		t.Fatal(err)
	}
	db2, err := onex.Open(g2, onex.Config{MinLength: 4, MaxLength: 8})
	if err != nil {
		t.Fatal(err)
	}
	if db1.ST() != db2.ST() || db1.Stats().Groups != db2.Stats().Groups {
		t.Fatal("base construction not deterministic")
	}
	m1, err := db1.BestMatchOtherSeries("MA", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := db2.BestMatchOtherSeries("MA", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Series != m2.Series || m1.Dist != m2.Dist {
		t.Fatal("queries not deterministic")
	}
	// Chart rendering is pure: same inputs, byte-identical SVG.
	v1, _ := db1.SeriesValues("MA")
	svgA := viz.LineChart("t", []viz.NamedSeries{{Name: "MA", Values: v1}}, 300, 150)
	svgB := viz.LineChart("t", []viz.NamedSeries{{Name: "MA", Values: v1}}, 300, 150)
	if svgA != svgB {
		t.Fatal("chart rendering not deterministic")
	}
}

// TestPipelineExactVsApproxConsistency: on the same data, the certified
// exact mode must never return a worse match than approximate mode.
func TestPipelineExactVsApproxConsistency(t *testing.T) {
	data := gen.CBF(gen.CBFOptions{PerClass: 4, Length: 48})
	approx, err := onex.Open(data, onex.Config{MinLength: 8, MaxLength: 12, ST: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := onex.Open(data, onex.Config{MinLength: 8, MaxLength: 12, ST: 0.12, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []struct {
		name  string
		start int
		l     int
	}{
		{"cbf-cylinder-00", 3, 10},
		{"cbf-bell-01", 0, 8},
		{"cbf-funnel-02", 12, 12},
	} {
		ma, err := approx.BestMatchForSeries(probe.name, probe.start, probe.l)
		if err != nil {
			t.Fatal(err)
		}
		me, err := exact.BestMatchForSeries(probe.name, probe.start, probe.l)
		if err != nil {
			t.Fatal(err)
		}
		if me.Dist > ma.Dist+1e-9 {
			t.Fatalf("%s: exact %g worse than approx %g", probe.name, me.Dist, ma.Dist)
		}
	}
}
