// Cross-module integration tests: each test drives a complete user journey
// through the public surfaces (generators -> facade -> persistence ->
// HTTP server -> visualization), asserting consistency between layers.
package repro

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/server"
	"repro/internal/ts"
	"repro/internal/viz"
	"repro/onex"
)

// TestPipelineGenerateSaveReloadQuery exercises: generate -> save dataset
// to disk -> reload -> open -> save base -> reopen from base -> identical
// answers across the persistence boundary.
func TestPipelineGenerateSaveReloadQuery(t *testing.T) {
	dir := t.TempDir()
	data := gen.Matters(gen.MattersOptions{Indicator: gen.GrowthRate, Periods: 16})

	csvPath := filepath.Join(dir, "growth.csv")
	if err := ts.SaveFile(csvPath, data); err != nil {
		t.Fatal(err)
	}
	reloaded, err := onex.LoadDataset(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	db, err := onex.Open(reloaded, onex.Config{MinLength: 4, MaxLength: 9})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := db.BestMatchOtherSeries("MA", 0, 8)
	if err != nil {
		t.Fatal(err)
	}

	basePath := filepath.Join(dir, "growth.base")
	if err := db.SaveBase(basePath); err != nil {
		t.Fatal(err)
	}
	db2, err := onex.OpenWithBase(reloaded, basePath, onex.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := db2.BestMatchOtherSeries("MA", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Series != m2.Series || m1.Start != m2.Start || math.Abs(m1.Dist-m2.Dist) > 1e-12 {
		t.Fatalf("answers diverge across base persistence: %+v vs %+v", m1, m2)
	}
}

// TestPipelineServerMatchesLibrary verifies that the HTTP layer returns the
// same similarity answer as a direct library call on the same data.
func TestPipelineServerMatchesLibrary(t *testing.T) {
	data := gen.Matters(gen.MattersOptions{Indicator: gen.GrowthRate, Periods: 16})
	db, err := onex.Open(data, onex.Config{MinLength: 4, MaxLength: 9})
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.BestMatchForSeries("MA", 2, 8)
	if err != nil {
		t.Fatal(err)
	}

	srv := server.New()
	srv.AddDB("growth", db)
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	body, _ := json.Marshal(server.QueryRequest{Series: "MA", Start: 2, Length: 8})
	resp, err := http.Post(hts.URL+"/api/datasets/growth/query/similarity", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got []onex.Match
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("server returned %d matches", len(got))
	}
	if got[0].Series != want.Series || got[0].Start != want.Start ||
		math.Abs(got[0].Dist-want.Dist) > 1e-12 {
		t.Fatalf("server answer %+v != library answer %+v", got[0], want)
	}
}

// TestPipelineSeasonalToVisualization drives the Fig 4 flow: seasonal query
// results render into a well-formed seasonal view whose segments equal the
// pattern's occurrences.
func TestPipelineSeasonalToVisualization(t *testing.T) {
	data := gen.ElectricityLoad(gen.ElectricityOptions{Households: 1, Days: 14, SamplesPerDay: 12})
	db, err := onex.Open(data, onex.Config{MinLength: 12, MaxLength: 12, Band: 2})
	if err != nil {
		t.Fatal(err)
	}
	pats, err := db.Seasonal("household-00", 12, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) == 0 {
		t.Fatal("no seasonal pattern in daily-cycle data")
	}

	srv := server.New()
	srv.AddDB("power", db)
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()
	resp, err := http.Get(hts.URL + "/viz/power/seasonal.svg?series=household-00&len=12")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(svg, "<svg") {
		t.Fatalf("seasonal svg: %d", resp.StatusCode)
	}
	// The base series line plus one polyline per occurrence of the top
	// pattern.
	if got := strings.Count(svg, "<polyline"); got != 1+pats[0].Occurrences {
		t.Fatalf("seasonal view polylines = %d, want %d", got, 1+pats[0].Occurrences)
	}
}

// TestPipelineIncrementalInsertEndToEnd: add a series over HTTP, then find
// it from a fresh query, and confirm the dataset stats moved.
func TestPipelineIncrementalInsertEndToEnd(t *testing.T) {
	data := gen.Matters(gen.MattersOptions{Indicator: gen.GrowthRate, Periods: 16})
	db, err := onex.Open(data, onex.Config{MinLength: 4, MaxLength: 9})
	if err != nil {
		t.Fatal(err)
	}
	before := db.Stats().Subsequences

	srv := server.New()
	srv.AddDB("growth", db)
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	ma, err := db.SeriesValues("MA")
	if err != nil {
		t.Fatal(err)
	}
	clone := make([]float64, len(ma))
	for i, v := range ma {
		clone[i] = v + 0.0002
	}
	body, _ := json.Marshal(server.AddSeriesRequest{Series: "MA-clone", Values: clone})
	resp, err := http.Post(hts.URL+"/api/datasets/growth/series", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add series status %d", resp.StatusCode)
	}
	if db.Stats().Subsequences <= before {
		t.Fatal("insert did not grow the base")
	}
	m, err := db.BestMatchOtherSeries("MA", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Series != "MA-clone" {
		t.Fatalf("clone not found as best match, got %s", m.Series)
	}
}

// TestPipelineServingTierEndToEnd drives the full serving tier at once —
// versioned result cache, admission gate, rate limiter (configured too
// loose to fire), and /metrics — through one load→query→ingest→query
// journey, asserting cached answers agree with direct library calls
// before and after the ingest.
func TestPipelineServingTierEndToEnd(t *testing.T) {
	data := gen.Matters(gen.MattersOptions{Indicator: gen.GrowthRate, Periods: 16})
	db, err := onex.Open(data, onex.Config{MinLength: 4, MaxLength: 9})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.WithCache(1<<20), server.WithRateLimit(1e6, 1e6), server.WithMaxInflight(4, 16))
	srv.AddDB("growth", db)
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	post := func(path, body string) (int, []byte) {
		resp, err := http.Post(hts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.Bytes()
	}

	const q = `{"window":{"series":"MA","start":2,"length":8},"k":1,"mode":"exact","exclude":{"self":true}}`
	st, first := post("/api/v1/datasets/growth/query", q)
	if st != http.StatusOK {
		t.Fatalf("query status %d: %s", st, first)
	}
	st, repeat := post("/api/v1/datasets/growth/query", q)
	if st != http.StatusOK || !bytes.Equal(first, repeat) {
		t.Fatal("repeated query not served byte-identically from cache")
	}
	var res onex.Result
	if err := json.Unmarshal(repeat, &res); err != nil {
		t.Fatal(err)
	}
	want, err := db.BestMatchOtherSeries("MA", 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Window exclude-self differs from exclude-source only when the best
	// match is in MA itself; compare against the appropriate oracle.
	if len(res.Matches) == 0 || res.Matches[0].Dist > want.Dist+1e-9 && res.Matches[0].Series != "MA" {
		t.Fatalf("cached answer %+v worse than library answer %+v", res.Matches, want)
	}

	// Ingest a decisive new best match; the cache must refresh.
	ma, err := db.SeriesValues("MA")
	if err != nil {
		t.Fatal(err)
	}
	clone := make([]float64, len(ma))
	for i, v := range ma {
		clone[i] = v + 0.0001
	}
	cb, _ := json.Marshal(map[string]any{"series": "MA-twin", "values": clone})
	if st, body := post("/api/v1/datasets/growth/series", string(cb)); st != http.StatusOK {
		t.Fatalf("ingest status %d: %s", st, body)
	}
	st, after := post("/api/v1/datasets/growth/query", q)
	if st != http.StatusOK {
		t.Fatalf("post-ingest query status %d", st)
	}
	var res2 onex.Result
	if err := json.Unmarshal(after, &res2); err != nil {
		t.Fatal(err)
	}
	if len(res2.Matches) == 0 || res2.Matches[0].Series != "MA-twin" {
		t.Fatalf("post-ingest cached query missed the new best match: %+v", res2.Matches)
	}

	// /metrics reflects the journey: hits, misses, and the bumped version.
	resp, err := http.Get(hts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, needle := range []string{
		`onex_dataset_version{dataset="growth"} 2`,
		`onex_http_requests_total{endpoint="query",code="200"} 3`,
		`onex_http_requests_total{endpoint="ingest",code="200"} 1`,
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("/metrics missing %q", needle)
		}
	}
	if !strings.Contains(text, "onex_cache_hits_total 1") {
		t.Errorf("/metrics cache hits not 1:\n%s", text)
	}
}

// TestDeterminism: generators, bases and rendered charts are pure
// functions of their seeds — the property every EXPERIMENTS.md number
// relies on.
func TestDeterminism(t *testing.T) {
	g1 := gen.Matters(gen.MattersOptions{Indicator: gen.TechEmployment, Seed: 3})
	g2 := gen.Matters(gen.MattersOptions{Indicator: gen.TechEmployment, Seed: 3})
	for i := range g1.Series {
		for j := range g1.Series[i].Values {
			if g1.Series[i].Values[j] != g2.Series[i].Values[j] {
				t.Fatal("generator not deterministic")
			}
		}
	}
	db1, err := onex.Open(g1, onex.Config{MinLength: 4, MaxLength: 8})
	if err != nil {
		t.Fatal(err)
	}
	db2, err := onex.Open(g2, onex.Config{MinLength: 4, MaxLength: 8})
	if err != nil {
		t.Fatal(err)
	}
	if db1.ST() != db2.ST() || db1.Stats().Groups != db2.Stats().Groups {
		t.Fatal("base construction not deterministic")
	}
	m1, err := db1.BestMatchOtherSeries("MA", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := db2.BestMatchOtherSeries("MA", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Series != m2.Series || m1.Dist != m2.Dist {
		t.Fatal("queries not deterministic")
	}
	// Chart rendering is pure: same inputs, byte-identical SVG.
	v1, _ := db1.SeriesValues("MA")
	svgA := viz.LineChart("t", []viz.NamedSeries{{Name: "MA", Values: v1}}, 300, 150)
	svgB := viz.LineChart("t", []viz.NamedSeries{{Name: "MA", Values: v1}}, 300, 150)
	if svgA != svgB {
		t.Fatal("chart rendering not deterministic")
	}
}

// TestPipelineExactVsApproxConsistency: on the same data, the certified
// exact mode must never return a worse match than approximate mode.
func TestPipelineExactVsApproxConsistency(t *testing.T) {
	data := gen.CBF(gen.CBFOptions{PerClass: 4, Length: 48})
	approx, err := onex.Open(data, onex.Config{MinLength: 8, MaxLength: 12, ST: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := onex.Open(data, onex.Config{MinLength: 8, MaxLength: 12, ST: 0.12, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []struct {
		name  string
		start int
		l     int
	}{
		{"cbf-cylinder-00", 3, 10},
		{"cbf-bell-01", 0, 8},
		{"cbf-funnel-02", 12, 12},
	} {
		ma, err := approx.BestMatchForSeries(probe.name, probe.start, probe.l)
		if err != nil {
			t.Fatal(err)
		}
		me, err := exact.BestMatchForSeries(probe.name, probe.start, probe.l)
		if err != nil {
			t.Fatal(err)
		}
		if me.Dist > ma.Dist+1e-9 {
			t.Fatalf("%s: exact %g worse than approx %g", probe.name, me.Dist, ma.Dist)
		}
	}
}
